//! A replicated cluster generating scheduling instances (Section 7.4's
//! workload: unit tasks, Poisson(λ) arrivals, popularity-biased owners,
//! replica processing sets).

use flowsched_core::instance::{Instance, InstanceBuilder};
use flowsched_core::task::Task;
use flowsched_stats::poisson::PoissonProcess;
use flowsched_stats::service::ServiceDist;
use flowsched_stats::zipf::{BiasCase, Zipf};
use rand::Rng;

use crate::replication::ReplicationStrategy;

/// Static description of a simulated key-value cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Machine count (the paper uses `m = 15`).
    pub m: usize,
    /// Replication factor (the paper's realistic default is `k = 3`).
    pub k: usize,
    /// Replication strategy.
    pub strategy: ReplicationStrategy,
    /// Zipf shape `s` of the popularity bias.
    pub s: f64,
    /// Bias case (Uniform / Worst-case / Shuffled).
    pub case: BiasCase,
}

impl ClusterConfig {
    /// The paper's Section 7.4 baseline: `m = 15`, `k = 3`.
    pub fn paper_default(strategy: ReplicationStrategy, s: f64, case: BiasCase) -> Self {
        ClusterConfig {
            m: 15,
            k: 3,
            strategy,
            s,
            case,
        }
    }
}

/// A cluster with a materialized popularity distribution, ready to
/// generate request streams.
#[derive(Debug, Clone)]
pub struct KvCluster {
    config: ClusterConfig,
    popularity: Zipf,
}

impl KvCluster {
    /// Materializes the cluster; `Shuffled` popularity consumes `rng`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ m` and `m ≥ 1`.
    pub fn new(config: ClusterConfig, rng: &mut impl Rng) -> Self {
        assert!(config.m >= 1, "need machines");
        assert!(
            config.k >= 1 && config.k <= config.m,
            "replication factor must be in 1..=m"
        );
        let popularity = Zipf::bias_case(config.m, config.s, config.case, rng);
        KvCluster { config, popularity }
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Machine-level popularity `P(Eⱼ)`.
    pub fn popularity(&self) -> &Zipf {
        &self.popularity
    }

    /// The replica sets as plain lists (for the max-load solvers).
    pub fn allowed_sets(&self) -> Vec<Vec<usize>> {
        self.config
            .strategy
            .allowed_sets(self.config.k, self.config.m)
    }

    /// Generates `n` unit-task requests arriving as a Poisson process of
    /// rate `lambda`: each request samples an owner machine from the
    /// popularity distribution and is eligible on the owner's replica set.
    ///
    /// `lambda / m` is the average cluster load (1.0 = 100%).
    pub fn requests(&self, n: usize, lambda: f64, rng: &mut impl Rng) -> Instance {
        self.requests_with_service(n, lambda, ServiceDist::unit(), rng)
    }

    /// Like [`requests`](Self::requests) but with service times drawn
    /// from `dist` — real stores serve requests of varying size ("requests
    /// vary in size", Section 1). With `dist.mean() = 1`,
    /// `lambda / m` remains the average cluster load.
    pub fn requests_with_service(
        &self,
        n: usize,
        lambda: f64,
        dist: ServiceDist,
        rng: &mut impl Rng,
    ) -> Instance {
        let mut arrivals = PoissonProcess::new(lambda);
        let mut b = InstanceBuilder::new(self.config.m);
        for _ in 0..n {
            let t = arrivals.next_arrival(rng);
            let owner = self.popularity.sample(rng);
            let set = self
                .config
                .strategy
                .replica_set(owner, self.config.k, self.config.m);
            b.push(Task::new(t, dist.sample(rng)), set);
        }
        b.build().expect("generated requests are a valid instance")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_core::structure;
    use flowsched_stats::rng::seeded_rng;

    fn cluster(strategy: ReplicationStrategy, case: BiasCase) -> KvCluster {
        let mut rng = seeded_rng(1);
        KvCluster::new(
            ClusterConfig {
                m: 15,
                k: 3,
                strategy,
                s: 1.0,
                case,
            },
            &mut rng,
        )
    }

    #[test]
    fn requests_form_valid_unit_instances() {
        let c = cluster(ReplicationStrategy::Overlapping, BiasCase::Shuffled);
        let mut rng = seeded_rng(2);
        let inst = c.requests(500, 10.0, &mut rng);
        assert_eq!(inst.len(), 500);
        assert!(inst.is_unit());
        assert_eq!(inst.machines(), 15);
        // Arrivals strictly increasing with probability 1.
        for w in inst.tasks().windows(2) {
            assert!(w[0].release < w[1].release);
        }
    }

    #[test]
    fn overlapping_requests_are_ring_intervals() {
        let c = cluster(ReplicationStrategy::Overlapping, BiasCase::Uniform);
        let mut rng = seeded_rng(3);
        let inst = c.requests(200, 5.0, &mut rng);
        assert!(structure::is_ring_interval_family(inst.sets(), 15));
        assert_eq!(structure::fixed_size(inst.sets()), Some(3));
    }

    #[test]
    fn disjoint_requests_are_disjoint_blocks() {
        let c = cluster(ReplicationStrategy::Disjoint, BiasCase::Uniform);
        let mut rng = seeded_rng(4);
        let inst = c.requests(200, 5.0, &mut rng);
        assert!(structure::is_disjoint_family(inst.sets()));
    }

    #[test]
    fn arrival_rate_matches_lambda() {
        let c = cluster(ReplicationStrategy::Overlapping, BiasCase::Uniform);
        let mut rng = seeded_rng(5);
        let inst = c.requests(20_000, 10.0, &mut rng);
        let span = inst.horizon();
        let rate = inst.len() as f64 / span;
        assert!((rate - 10.0).abs() < 0.5, "empirical rate {rate}");
    }

    #[test]
    fn reproducible_per_seed() {
        let c = cluster(ReplicationStrategy::Disjoint, BiasCase::Shuffled);
        let mut r1 = seeded_rng(6);
        let mut r2 = seeded_rng(6);
        assert_eq!(c.requests(100, 3.0, &mut r1), c.requests(100, 3.0, &mut r2));
    }

    #[test]
    fn paper_default_shape() {
        let cfg =
            ClusterConfig::paper_default(ReplicationStrategy::Overlapping, 1.0, BiasCase::Uniform);
        assert_eq!((cfg.m, cfg.k), (15, 3));
    }

    #[test]
    fn service_distribution_drives_processing_times() {
        let c = cluster(ReplicationStrategy::Overlapping, BiasCase::Uniform);
        let mut rng = seeded_rng(8);
        let inst = c.requests_with_service(2000, 5.0, ServiceDist::mice_and_elephants(), &mut rng);
        assert!(!inst.is_unit());
        let mean_p = inst.total_work() / inst.len() as f64;
        assert!((mean_p - 1.0).abs() < 0.1, "mean service {mean_p}");
        // Only the two modal values appear.
        for t in inst.tasks() {
            assert!(t.ptime == 0.5 || t.ptime == 5.5, "{}", t.ptime);
        }
    }

    #[test]
    fn single_machine_cluster_works() {
        let mut rng = seeded_rng(9);
        let c = KvCluster::new(
            ClusterConfig {
                m: 1,
                k: 1,
                strategy: ReplicationStrategy::Disjoint,
                s: 2.0,
                case: BiasCase::WorstCase,
            },
            &mut rng,
        );
        let inst = c.requests(50, 0.5, &mut rng);
        assert_eq!(inst.machines(), 1);
        for set in inst.sets() {
            assert_eq!(set.len(), 1);
        }
    }

    #[test]
    fn extreme_bias_concentrates_owners() {
        let mut rng = seeded_rng(10);
        let c = KvCluster::new(
            ClusterConfig {
                m: 10,
                k: 2,
                strategy: ReplicationStrategy::Overlapping,
                s: 6.0,
                case: BiasCase::WorstCase,
            },
            &mut rng,
        );
        let inst = c.requests(2000, 5.0, &mut rng);
        // With s = 6 nearly every request targets owner 0's replica set
        // {M1, M2}.
        let hot = inst
            .sets()
            .iter()
            .filter(|s| s.as_slice() == [0, 1])
            .count();
        assert!(
            hot as f64 > 0.95 * inst.len() as f64,
            "hot fraction {hot}/2000"
        );
    }

    #[test]
    #[should_panic(expected = "1..=m")]
    fn oversized_replication_rejected() {
        let mut rng = seeded_rng(7);
        let _ = KvCluster::new(
            ClusterConfig {
                m: 3,
                k: 5,
                strategy: ReplicationStrategy::Overlapping,
                s: 0.0,
                case: BiasCase::Uniform,
            },
            &mut rng,
        );
    }
}
