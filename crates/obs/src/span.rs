//! Lifecycle spans derived from the event trace.
//!
//! The recorders store flat [`Event`]s; exporters and timeline viewers
//! want *intervals*. This module pairs events back up into:
//!
//! - [`TaskSpan`] — one per task, `release → start → finish`, built from
//!   the `TaskDispatch`/`TaskCompletion` pair the recorder emits
//!   together at dispatch time (dispatch carries `start`/`ptime`,
//!   completion carries `flow`, so `release = finish − flow` without
//!   needing the arrival event — which may have been overwritten in a
//!   truncated ring).
//! - [`MachineSpan`] — one per busy interval, from the engine's
//!   busy/idle alternation convention (PR 3): per machine, transitions
//!   strictly alternate starting with busy and the trailing idle is
//!   never emitted, so an unclosed busy interval ends at that machine's
//!   last service completion (recovered from its dispatch events), with
//!   the caller-supplied horizon as fallback.
//!
//! Truncated traces degrade gracefully: a task missing either half of
//! its pair produces no span, and a machine whose `MachineBusy` was
//! overwritten contributes no interval — downstream consumers should
//! check `EventRing::dropped` (surfaced as the `trace_events_dropped`
//! counter) before treating spans as complete.

use std::collections::HashMap;

use crate::event::Event;

/// One task's lifecycle: released, waited, served, finished.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpan {
    /// Engine-assigned task sequence number.
    pub task: u64,
    /// Machine the task ran on.
    pub machine: u32,
    /// Release time.
    pub release: f64,
    /// Start of service.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
}

impl TaskSpan {
    /// Time spent waiting for service.
    pub fn wait(&self) -> f64 {
        self.start - self.release
    }

    /// Time spent in service.
    pub fn service(&self) -> f64 {
        self.finish - self.start
    }

    /// Flow time `finish − release`.
    pub fn flow(&self) -> f64 {
        self.finish - self.release
    }
}

/// One contiguous busy interval of a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpan {
    /// Machine index.
    pub machine: u32,
    /// When the machine went busy.
    pub start: f64,
    /// When it went idle again (for a final unclosed span: the
    /// machine's last service completion, or the horizon if unknown).
    pub end: f64,
}

/// One outage interval of a machine (fault injection), paired from
/// `MachineCrash`/`MachineRecover` lifecycle events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageSpan {
    /// Machine index.
    pub machine: u32,
    /// Crash time.
    pub start: f64,
    /// Recovery time (the horizon for a crash with no recovery in the
    /// trace).
    pub end: f64,
}

/// One SLO breach instant extracted from the trace, ready to render as
/// a Perfetto instant event (see `export::chrome_trace_full`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreachMark {
    /// When the breach was evaluated (window end).
    pub at: f64,
    /// Observed Fmax/OPT-proxy ratio.
    pub ratio: f64,
    /// The envelope that was crossed.
    pub bound: f64,
}

/// Extracts every `SloBreach` event as a [`BreachMark`], in trace order.
pub fn breach_marks<'a>(events: impl IntoIterator<Item = &'a Event>) -> Vec<BreachMark> {
    events
        .into_iter()
        .filter_map(|ev| match *ev {
            Event::SloBreach { at, ratio, bound } => Some(BreachMark { at, ratio, bound }),
            _ => None,
        })
        .collect()
}

/// Pairs `TaskDispatch` and `TaskCompletion` events into [`TaskSpan`]s,
/// sorted by `(start, task)`. Tasks missing either event (overwritten
/// in a truncated ring) are skipped.
pub fn task_spans<'a>(events: impl IntoIterator<Item = &'a Event>) -> Vec<TaskSpan> {
    // (machine, start, ptime) from dispatch; flow arrives separately.
    let mut dispatched: HashMap<u64, (u32, f64, f64)> = HashMap::new();
    let mut spans = Vec::new();
    for ev in events {
        match *ev {
            Event::TaskDispatch {
                task,
                machine,
                start,
                ptime,
            } => {
                dispatched.insert(task, (machine, start, ptime));
            }
            Event::TaskCompletion { task, at, flow, .. } => {
                if let Some((machine, start, _)) = dispatched.remove(&task) {
                    spans.push(TaskSpan {
                        task,
                        machine,
                        release: at - flow,
                        start,
                        finish: at,
                    });
                }
            }
            _ => {}
        }
    }
    spans.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then_with(|| a.task.cmp(&b.task))
    });
    spans
}

/// Pairs busy/idle transitions into [`MachineSpan`]s, sorted by
/// `(machine, start)`. A machine still busy at the end of the trace
/// (the trailing idle is never emitted) is closed at the last service
/// completion *on that machine* — recovered from the `TaskDispatch`
/// events' `start + ptime` — so trailing spans don't absorb another
/// machine's makespan. `horizon` is the fallback when the trace holds
/// no dispatch evidence for the machine (e.g. transitions-only slices
/// or a truncated ring).
pub fn machine_spans<'a>(
    events: impl IntoIterator<Item = &'a Event>,
    horizon: f64,
) -> Vec<MachineSpan> {
    let mut open: HashMap<u32, f64> = HashMap::new();
    let mut last_service_end: HashMap<u32, f64> = HashMap::new();
    let mut spans = Vec::new();
    for ev in events {
        match *ev {
            Event::MachineBusy { machine, at } => {
                // The alternation invariant forbids busy-while-busy; a
                // truncated ring can still surface one, in which case the
                // earlier (possibly headless) interval is dropped.
                open.insert(machine, at);
            }
            Event::MachineIdle { machine, at } => {
                if let Some(start) = open.remove(&machine) {
                    spans.push(MachineSpan {
                        machine,
                        start,
                        end: at,
                    });
                }
            }
            Event::TaskDispatch {
                machine,
                start,
                ptime,
                ..
            } => {
                let end = last_service_end.entry(machine).or_insert(f64::NEG_INFINITY);
                *end = end.max(start + ptime);
            }
            _ => {}
        }
    }
    for (machine, start) in open {
        let end = last_service_end
            .get(&machine)
            .copied()
            .unwrap_or(horizon)
            .max(start);
        spans.push(MachineSpan {
            machine,
            start,
            end,
        });
    }
    spans.sort_by(|a, b| {
        a.machine
            .cmp(&b.machine)
            .then_with(|| a.start.total_cmp(&b.start))
    });
    spans
}

/// Pairs crash/recover lifecycle events into [`OutageSpan`]s, sorted by
/// `(machine, start)`. A crash with no matching recovery (the machine
/// stays down) closes at `horizon`; a headless recovery (its crash was
/// overwritten in a truncated ring) is dropped, mirroring
/// [`machine_spans`]'s degradation contract. Well-formed traces
/// alternate per machine (`FaultPlan::events` orders recover before
/// crash on ties, so even exactly-touching outages replay well-nested);
/// should a second crash still arrive while one is open (a truncated
/// ring), the earlier outage is closed at the new crash instant rather
/// than silently lost.
pub fn outage_spans<'a>(
    events: impl IntoIterator<Item = &'a Event>,
    horizon: f64,
) -> Vec<OutageSpan> {
    let mut open: HashMap<u32, f64> = HashMap::new();
    let mut spans = Vec::new();
    for ev in events {
        match *ev {
            Event::MachineCrash { machine, at } => {
                if let Some(start) = open.insert(machine, at) {
                    if start < at {
                        spans.push(OutageSpan {
                            machine,
                            start,
                            end: at,
                        });
                    }
                }
            }
            Event::MachineRecover { machine, at } => {
                if let Some(start) = open.remove(&machine) {
                    spans.push(OutageSpan {
                        machine,
                        start,
                        end: at,
                    });
                }
            }
            _ => {}
        }
    }
    for (machine, start) in open {
        spans.push(OutageSpan {
            machine,
            start,
            end: horizon.max(start),
        });
    }
    spans.sort_by(|a, b| {
        a.machine
            .cmp(&b.machine)
            .then_with(|| a.start.total_cmp(&b.start))
    });
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryRecorder;
    use crate::recorder::Recorder;

    #[test]
    fn spans_reconstruct_release_wait_and_service() {
        let mut r = MemoryRecorder::with_defaults(2);
        r.task_arrival(0, 1.0);
        r.task_dispatch(0, 1, 1.0, 2.5, 2.0);
        r.task_arrival(1, 2.0);
        r.task_dispatch(1, 0, 2.0, 2.0, 1.0);
        let spans = task_spans(r.trace().iter());
        assert_eq!(spans.len(), 2);
        // Sorted by start: task 1 (start 2.0) before task 0 (start 2.5).
        assert_eq!(spans[0].task, 1);
        assert_eq!(spans[1].task, 0);
        assert_eq!(spans[1].release, 1.0);
        assert_eq!(spans[1].wait(), 1.5);
        assert_eq!(spans[1].service(), 2.0);
        assert_eq!(spans[1].flow(), 3.5);
        assert_eq!(spans[1].machine, 1);
    }

    #[test]
    fn truncated_pairs_are_skipped_not_fabricated() {
        // A completion whose dispatch was overwritten yields no span.
        let events = [Event::TaskCompletion {
            task: 7,
            machine: 0,
            at: 5.0,
            flow: 2.0,
        }];
        assert!(task_spans(events.iter()).is_empty());
    }

    #[test]
    fn machine_spans_pair_transitions_and_close_at_horizon() {
        let events = [
            Event::MachineBusy {
                machine: 0,
                at: 0.0,
            },
            Event::MachineIdle {
                machine: 0,
                at: 2.0,
            },
            Event::MachineBusy {
                machine: 1,
                at: 1.0,
            },
            Event::MachineBusy {
                machine: 0,
                at: 3.0,
            },
        ];
        let spans = machine_spans(events.iter(), 10.0);
        assert_eq!(
            spans,
            vec![
                MachineSpan {
                    machine: 0,
                    start: 0.0,
                    end: 2.0
                },
                MachineSpan {
                    machine: 0,
                    start: 3.0,
                    end: 10.0
                },
                MachineSpan {
                    machine: 1,
                    start: 1.0,
                    end: 10.0
                },
            ]
        );
    }

    #[test]
    fn trailing_busy_closes_at_the_machines_own_last_completion() {
        // Machine 0 finishes its last task at 6.0; the global horizon is
        // 10.0 (some other machine runs longer). The trailing busy span
        // must not stretch to the horizon.
        let events = [
            Event::MachineBusy {
                machine: 0,
                at: 3.0,
            },
            Event::TaskDispatch {
                task: 0,
                machine: 0,
                start: 3.0,
                ptime: 3.0,
            },
        ];
        let spans = machine_spans(events.iter(), 10.0);
        assert_eq!(
            spans,
            vec![MachineSpan {
                machine: 0,
                start: 3.0,
                end: 6.0
            }]
        );
    }

    #[test]
    fn outage_spans_pair_crash_and_recover() {
        let events = [
            Event::MachineCrash {
                machine: 1,
                at: 2.0,
            },
            Event::MachineRecover {
                machine: 1,
                at: 5.0,
            },
            Event::MachineCrash {
                machine: 0,
                at: 4.0,
            },
            // Headless recovery: crash overwritten, must be dropped.
            Event::MachineRecover {
                machine: 2,
                at: 6.0,
            },
        ];
        let spans = outage_spans(events.iter(), 9.0);
        assert_eq!(
            spans,
            vec![
                OutageSpan {
                    machine: 0,
                    start: 4.0,
                    end: 9.0
                },
                OutageSpan {
                    machine: 1,
                    start: 2.0,
                    end: 5.0
                },
            ]
        );
    }

    #[test]
    fn touching_outages_pair_into_two_spans() {
        // FaultPlan::events() replays [1,2)+[2,3) as crash@1, recover@2,
        // crash@2, recover@3 (recover-before-crash on ties).
        let events = [
            Event::MachineCrash {
                machine: 0,
                at: 1.0,
            },
            Event::MachineRecover {
                machine: 0,
                at: 2.0,
            },
            Event::MachineCrash {
                machine: 0,
                at: 2.0,
            },
            Event::MachineRecover {
                machine: 0,
                at: 3.0,
            },
        ];
        let spans = outage_spans(events.iter(), 9.0);
        assert_eq!(
            spans,
            vec![
                OutageSpan {
                    machine: 0,
                    start: 1.0,
                    end: 2.0
                },
                OutageSpan {
                    machine: 0,
                    start: 2.0,
                    end: 3.0
                },
            ]
        );
    }

    #[test]
    fn crash_while_open_closes_the_earlier_outage() {
        // A truncated ring can drop the recover between two crashes; the
        // earlier outage closes at the second crash instead of vanishing.
        let events = [
            Event::MachineCrash {
                machine: 0,
                at: 1.0,
            },
            Event::MachineCrash {
                machine: 0,
                at: 4.0,
            },
            Event::MachineRecover {
                machine: 0,
                at: 6.0,
            },
        ];
        let spans = outage_spans(events.iter(), 9.0);
        assert_eq!(
            spans,
            vec![
                OutageSpan {
                    machine: 0,
                    start: 1.0,
                    end: 4.0
                },
                OutageSpan {
                    machine: 0,
                    start: 4.0,
                    end: 6.0
                },
            ]
        );
    }

    #[test]
    fn breach_marks_extract_slo_events_only() {
        let events = [
            Event::TaskArrival { task: 0, at: 0.0 },
            Event::SloBreach {
                at: 4.0,
                ratio: 2.5,
                bound: 2.0,
            },
            Event::SloBreach {
                at: 8.0,
                ratio: 3.0,
                bound: 2.0,
            },
        ];
        let marks = breach_marks(events.iter());
        assert_eq!(marks.len(), 2);
        assert_eq!(
            marks[0],
            BreachMark {
                at: 4.0,
                ratio: 2.5,
                bound: 2.0
            }
        );
    }

    #[test]
    fn headless_idle_is_dropped() {
        let events = [Event::MachineIdle {
            machine: 3,
            at: 4.0,
        }];
        assert!(machine_spans(events.iter(), 5.0).is_empty());
    }
}
