//! Sharded recording for parallel sweeps.
//!
//! `Recorder` hooks take `&mut self`, so one recorder cannot be shared
//! across `flowsched_parallel::par_map` workers. The sharded scheme
//! sidesteps locks entirely: every *job* (not thread) gets its own
//! recorder, the job returns it alongside its result, and the shards
//! are merged **in job order** afterwards. Because every merged
//! quantity is a commutative, associative fold (counter sums, histogram
//! bin sums, busy-time sums, max makespan), the merged snapshot is
//! *identical* to a single-threaded run's — independent of how the
//! work-stealing cursor interleaved the jobs — which
//! `tests/obs_invariants.rs` pins across thread counts. The one
//! order-sensitive piece, the event trace, is concatenated in job
//! order, making it a valid (and deterministic) interleaving of the
//! per-job traces.

use crate::memory::{MemoryRecorder, ObsConfig};
use crate::window::{WindowConfig, WindowedMetrics};

/// A bank of per-job [`MemoryRecorder`] shards and their merge.
///
/// Typical `par_map` usage:
///
/// ```
/// use flowsched_obs::{ObsConfig, ShardedRecorder};
/// use flowsched_obs::prelude::*;
///
/// let cfg = ObsConfig::defaults(4);
/// let results: Vec<(u64, MemoryRecorder)> = (0..8u64)
///     .map(|job| {
///         let mut rec = ShardedRecorder::shard(&cfg); // inside par_map
///         rec.task_arrival(job, job as f64);
///         (job, rec)
///     })
///     .collect();
/// let merged = ShardedRecorder::from_shards(results.into_iter().map(|(_, r)| r))
///     .merged(&cfg);
/// assert_eq!(merged.counters().get(Counter::TasksArrived), 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShardedRecorder {
    shards: Vec<MemoryRecorder>,
}

impl ShardedRecorder {
    /// A fresh shard for one job. A plain constructor (rather than a
    /// method on a shared bank) so `par_map` closures, which only get
    /// `&self` captures, can mint shards without synchronization.
    pub fn shard(cfg: &ObsConfig) -> MemoryRecorder {
        MemoryRecorder::new(cfg)
    }

    /// Collects job shards back into a bank. `par_map` preserves input
    /// order, so collecting its output restores job order regardless of
    /// which worker ran which job.
    pub fn from_shards(shards: impl IntoIterator<Item = MemoryRecorder>) -> Self {
        ShardedRecorder {
            shards: shards.into_iter().collect(),
        }
    }

    /// The shards in job order.
    pub fn shards(&self) -> &[MemoryRecorder] {
        &self.shards
    }

    /// Merges all shards (in job order) into one recorder. `cfg` seeds
    /// the empty accumulator, so zero shards still yield a well-formed
    /// recorder.
    pub fn merged(&self, cfg: &ObsConfig) -> MemoryRecorder {
        let mut acc = MemoryRecorder::new(cfg);
        for shard in &self.shards {
            acc.merge(shard);
        }
        acc
    }
}

/// Merges per-job windowed time series (in job order) into one. The
/// windowed counterpart of [`ShardedRecorder::merged`]; window-cell
/// sums are commutative, so the result matches a single-threaded
/// series exactly.
pub fn merge_windows<'a>(
    cfg: &WindowConfig,
    shards: impl IntoIterator<Item = &'a WindowedMetrics>,
) -> WindowedMetrics {
    let mut acc = WindowedMetrics::new(cfg.clone());
    for shard in shards {
        acc.merge(shard);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counter;
    use crate::recorder::Recorder;

    #[test]
    fn merged_shards_equal_one_sequential_recorder() {
        let cfg = ObsConfig::defaults(3);
        let jobs: Vec<(u64, f64)> = (0..20).map(|i| (i, i as f64 * 0.3)).collect();

        let mut sequential = MemoryRecorder::new(&cfg);
        let mut shards = Vec::new();
        for &(task, at) in &jobs {
            let mut shard = ShardedRecorder::shard(&cfg);
            for r in [&mut sequential, &mut shard] {
                r.task_arrival(task, at);
                r.task_dispatch(task, (task % 3) as u32, at, at + 0.1, 1.0);
            }
            shards.push(shard);
        }
        let merged = ShardedRecorder::from_shards(shards).merged(&cfg);
        assert_eq!(
            merged.counters().get(Counter::TasksDispatched),
            sequential.counters().get(Counter::TasksDispatched)
        );
        assert_eq!(
            merged.flow_histogram().counts(),
            sequential.flow_histogram().counts()
        );
        assert_eq!(merged.busy_time(), sequential.busy_time());
        assert_eq!(merged.trace().to_vec(), sequential.trace().to_vec());
    }

    #[test]
    fn zero_shards_merge_to_an_empty_recorder() {
        let cfg = ObsConfig::defaults(2);
        let merged = ShardedRecorder::from_shards(std::iter::empty()).merged(&cfg);
        assert_eq!(merged.counters().get(Counter::TasksArrived), 0);
        assert_eq!(merged.busy_time(), &[0.0, 0.0]);
    }

    #[test]
    fn windowed_shards_merge_in_job_order() {
        let cfg = WindowConfig::defaults(1, 1.0);
        let mut a = WindowedMetrics::new(cfg.clone());
        a.task_dispatch(0, 0, 0.0, 0.0, 0.5);
        let mut b = WindowedMetrics::new(cfg.clone());
        b.task_dispatch(1, 0, 0.2, 0.5, 0.5);
        let merged = merge_windows(&cfg, [&a, &b]);
        // b's completion at exactly 1.0 opens window 1.
        assert_eq!(merged.windows().len(), 2);
        assert_eq!(merged.windows()[0].starts, 2);
        assert_eq!(merged.windows()[1].completions, 1);
        assert!((merged.windows()[0].busy[0] - 1.0).abs() < 1e-12);
    }
}
