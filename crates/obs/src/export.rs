//! Exporters: Chrome trace-event JSON, Prometheus text exposition, and
//! CSV time series.
//!
//! Three sinks for the three shapes the telemetry pipeline produces:
//!
//! - [`chrome_trace`] — the span layer as Chrome trace-event JSON
//!   (`{"traceEvents": [...]}` with `"ph": "X"` complete events),
//!   loadable in Perfetto / `chrome://tracing`. Machines are threads of
//!   pid 1 ("machines"), tasks are threads of pid 2 ("tasks") keyed by
//!   the machine they ran on — task spans on one machine never overlap,
//!   so each machine row renders as a clean service timeline with wait
//!   and flow in the event args. Timestamps scale engine time to
//!   microseconds (×1e6), the unit the format mandates.
//! - [`prometheus_text`] — the aggregate recorder in Prometheus text
//!   exposition: every counter as a `_total`, busy time / utilization as
//!   per-machine labelled gauges, and the flow histogram as cumulative
//!   `le` buckets with `_sum` and `_count`. Every series carries proper
//!   `# HELP` / `# TYPE` lines. Bucket lines are emitted only where the
//!   cumulative count changes (plus `+Inf`), keeping a 4096-bin dump
//!   readable; scrape semantics are unaffected because cumulative
//!   buckets are monotone. [`prometheus_text_with`] additionally labels
//!   every series with the `PolicySpec` registry string (e.g.
//!   `policy="eft:min:indexed"`) and appends caller-supplied gauges
//!   (e.g. `weighted_fmax` out of a `SimReport`), so scraped runs stay
//!   distinguishable.
//! - [`windows_to_csv`] — the windowed time series as one CSV row per
//!   window: counts, rates, time-averaged queue depth, windowed flow
//!   percentiles, and per-machine utilization columns.

use serde::Value;

use crate::counters::Counter;
use crate::memory::MemoryRecorder;
use crate::span::{BreachMark, MachineSpan, OutageSpan, TaskSpan};
use crate::window::WindowedMetrics;

/// Seconds of engine time → microseconds of trace time.
const TRACE_US: f64 = 1e6;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(v: f64) -> Value {
    Value::Number(v)
}

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

/// Renders task and machine spans as Chrome trace-event JSON (see the
/// module docs for the track layout). Events are sorted by timestamp as
/// Perfetto's JSON importer expects.
pub fn chrome_trace(tasks: &[TaskSpan], machines: &[MachineSpan]) -> String {
    chrome_trace_with_outages(tasks, machines, &[])
}

/// [`chrome_trace`] plus fault-injection outages: each [`OutageSpan`]
/// renders as a `"down"` complete event on the machine's pid-1 row,
/// so crash windows appear inline with the busy intervals they
/// interrupt.
pub fn chrome_trace_with_outages(
    tasks: &[TaskSpan],
    machines: &[MachineSpan],
    outages: &[OutageSpan],
) -> String {
    chrome_trace_full(tasks, machines, outages, &[])
}

/// [`chrome_trace_with_outages`] plus SLO breach marks: each
/// [`BreachMark`] renders as a global `"ph": "i"` instant event named
/// `"slo_breach"` carrying the ratio and the crossed bound in its args,
/// so breaches show up as flagpoles across the whole Perfetto timeline.
pub fn chrome_trace_full(
    tasks: &[TaskSpan],
    machines: &[MachineSpan],
    outages: &[OutageSpan],
    breaches: &[BreachMark],
) -> String {
    let mut events: Vec<Value> = Vec::new();
    // Track-naming metadata first (ph "M" events are position-free).
    for (pid, name) in [(1.0, "machines"), (2.0, "tasks")] {
        events.push(obj(vec![
            ("ph", s("M")),
            ("pid", num(pid)),
            ("tid", num(0.0)),
            ("name", s("process_name")),
            ("args", obj(vec![("name", s(name))])),
        ]));
    }
    let mut seen_machines: Vec<u32> = tasks
        .iter()
        .map(|t| t.machine)
        .chain(machines.iter().map(|m| m.machine))
        .chain(outages.iter().map(|o| o.machine))
        .collect();
    seen_machines.sort_unstable();
    seen_machines.dedup();
    for &m in &seen_machines {
        for pid in [1.0, 2.0] {
            events.push(obj(vec![
                ("ph", s("M")),
                ("pid", num(pid)),
                ("tid", num(m as f64)),
                ("name", s("thread_name")),
                ("args", obj(vec![("name", s(&format!("machine {m}")))])),
            ]));
        }
    }

    let mut spans: Vec<Value> = Vec::new();
    for m in machines {
        spans.push(obj(vec![
            ("ph", s("X")),
            ("pid", num(1.0)),
            ("tid", num(m.machine as f64)),
            ("name", s("busy")),
            ("ts", num(m.start * TRACE_US)),
            ("dur", num((m.end - m.start) * TRACE_US)),
        ]));
    }
    for o in outages {
        spans.push(obj(vec![
            ("ph", s("X")),
            ("pid", num(1.0)),
            ("tid", num(o.machine as f64)),
            ("name", s("down")),
            ("ts", num(o.start * TRACE_US)),
            ("dur", num((o.end - o.start) * TRACE_US)),
        ]));
    }
    for t in tasks {
        spans.push(obj(vec![
            ("ph", s("X")),
            ("pid", num(2.0)),
            ("tid", num(t.machine as f64)),
            ("name", s(&format!("task {}", t.task))),
            ("ts", num(t.start * TRACE_US)),
            ("dur", num(t.service() * TRACE_US)),
            (
                "args",
                obj(vec![
                    ("release", num(t.release)),
                    ("wait", num(t.wait())),
                    ("flow", num(t.flow())),
                ]),
            ),
        ]));
    }
    for b in breaches {
        spans.push(obj(vec![
            ("ph", s("i")),
            ("pid", num(1.0)),
            ("tid", num(0.0)),
            ("name", s("slo_breach")),
            ("ts", num(b.at * TRACE_US)),
            ("s", s("g")),
            (
                "args",
                obj(vec![("ratio", num(b.ratio)), ("bound", num(b.bound))]),
            ),
        ]));
    }
    spans.sort_by(|a, b| {
        let ts = |v: &Value| v.get("ts").and_then(Value::as_f64).unwrap_or(0.0);
        ts(a).total_cmp(&ts(b))
    });
    events.extend(spans);

    let root = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
    ]);
    serde_json::to_string(&root).expect("trace serialization is infallible")
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One caller-supplied gauge appended to the exposition — how run-level
/// metrics that live outside the recorder (e.g. a `SimReport`'s
/// `weighted_fmax`) join the scrape.
#[derive(Debug, Clone)]
pub struct ExtraGauge<'a> {
    /// Series name without the `flowsched_` prefix (snake_case).
    pub name: &'a str,
    /// `# HELP` text.
    pub help: &'a str,
    /// Gauge value.
    pub value: f64,
}

/// Options for [`prometheus_text_with`].
#[derive(Debug, Clone, Default)]
pub struct PromOptions<'a> {
    /// When set, every series carries a `policy="<spec>"` label (the
    /// `PolicySpec` registry string, e.g. `eft:min:indexed`).
    pub policy: Option<&'a str>,
    /// Extra gauges appended after the recorder's own families.
    pub extra_gauges: Vec<ExtraGauge<'a>>,
}

/// Renders the recorder's aggregates in Prometheus text exposition
/// format, `flowsched_`-prefixed (see the module docs for the families).
/// Every series gets `# HELP` and `# TYPE` lines.
pub fn prometheus_text(rec: &MemoryRecorder) -> String {
    prometheus_text_with(rec, &PromOptions::default())
}

/// `{policy="…",extra…}` / `{extra…}` / `` label rendering.
fn label_set(policy: Option<&str>, extra: &str) -> String {
    match (policy, extra.is_empty()) {
        (None, true) => String::new(),
        (None, false) => format!("{{{extra}}}"),
        (Some(p), true) => format!("{{policy=\"{p}\"}}"),
        (Some(p), false) => format!("{{policy=\"{p}\",{extra}}}"),
    }
}

/// [`prometheus_text`] with a policy label and extra gauges (see
/// [`PromOptions`]). The `trace_events_dropped` counter is sourced from
/// the event ring itself ([`EventRing::dropped`](crate::EventRing)), the
/// authoritative overwrite count, so silent trace truncation is always
/// observable in a scrape even when the counter bank missed a bump.
pub fn prometheus_text_with(rec: &MemoryRecorder, opts: &PromOptions<'_>) -> String {
    let mut out = String::new();
    let lbl = |extra: &str| label_set(opts.policy, extra);

    for (c, v) in rec.counters().iter() {
        let name = format!("flowsched_{}_total", c.name());
        // The ring knows its own losses better than the counter bank
        // (events can be pushed by paths that never touch the bank).
        let v = if c == Counter::TraceEventsDropped {
            v.max(rec.trace().dropped())
        } else {
            v
        };
        out.push_str(&format!(
            "# HELP {name} {}\n# TYPE {name} counter\n{name}{} {v}\n",
            c.help(),
            lbl("")
        ));
    }

    out.push_str(
        "# HELP flowsched_machine_busy_time Accumulated busy time per machine.\n\
         # TYPE flowsched_machine_busy_time gauge\n",
    );
    for (m, b) in rec.busy_time().iter().enumerate() {
        out.push_str(&format!(
            "flowsched_machine_busy_time{} {}\n",
            lbl(&format!("machine=\"{m}\"")),
            fmt_value(*b)
        ));
    }
    out.push_str(
        "# HELP flowsched_machine_utilization Busy time over recorded makespan per machine.\n\
         # TYPE flowsched_machine_utilization gauge\n",
    );
    for (m, u) in rec.utilization().iter().enumerate() {
        out.push_str(&format!(
            "flowsched_machine_utilization{} {}\n",
            lbl(&format!("machine=\"{m}\"")),
            fmt_value(*u)
        ));
    }
    out.push_str(&format!(
        "# HELP flowsched_makespan Largest completion timestamp recorded.\n\
         # TYPE flowsched_makespan gauge\nflowsched_makespan{} {}\n",
        lbl(""),
        fmt_value(rec.makespan_seen())
    ));

    let h = rec.flow_histogram();
    out.push_str(
        "# HELP flowsched_flow_time Flow time (completion minus release) of dispatched tasks.\n\
         # TYPE flowsched_flow_time histogram\n",
    );
    // Values below the range are ≤ every finite bucket bound, so the
    // underflow mass seeds the cumulative count.
    let mut cum = h.underflow();
    let mut last_emitted = u64::MAX;
    for (i, &c) in h.counts().iter().enumerate() {
        cum += c;
        if cum != last_emitted && (c > 0 || i + 1 == h.counts().len()) {
            let (_, upper) = h.bin_edges(i);
            out.push_str(&format!(
                "flowsched_flow_time_bucket{} {cum}\n",
                lbl(&format!("le=\"{}\"", fmt_value(upper)))
            ));
            last_emitted = cum;
        }
    }
    out.push_str(&format!(
        "flowsched_flow_time_bucket{} {}\n",
        lbl("le=\"+Inf\""),
        h.total()
    ));
    out.push_str(&format!(
        "flowsched_flow_time_sum{} {}\n",
        lbl(""),
        fmt_value(h.sum())
    ));
    out.push_str(&format!(
        "flowsched_flow_time_count{} {}\n",
        lbl(""),
        h.total()
    ));

    for g in &opts.extra_gauges {
        let name = format!("flowsched_{}", g.name);
        out.push_str(&format!(
            "# HELP {name} {}\n# TYPE {name} gauge\n{name}{} {}\n",
            g.help,
            lbl(""),
            fmt_value(g.value)
        ));
    }
    out
}

/// Renders the windowed time series as CSV: one row per window with
/// counts, rates, queue depth, flow percentiles, and one
/// `utilization_m<i>` column per machine.
pub fn windows_to_csv(series: &WindowedMetrics) -> String {
    let machines = series.config().machines;
    let width = series.width();
    let mut out = String::from(
        "window,t_start,t_end,arrivals,starts,completions,\
         arrival_rate,completion_rate,mean_queue_depth,mean_utilization,\
         flow_p50,flow_p95,flow_p99",
    );
    for m in 0..machines {
        out.push_str(&format!(",utilization_m{m}"));
    }
    out.push('\n');
    for (k, w) in series.windows().iter().enumerate() {
        let q = |level: f64| {
            w.flow_hist
                .quantile(level)
                .map(fmt_value)
                .unwrap_or_default()
        };
        out.push_str(&format!(
            "{k},{},{},{},{},{},{},{},{},{},{},{},{}",
            fmt_value(k as f64 * width),
            fmt_value((k + 1) as f64 * width),
            w.arrivals,
            w.starts,
            w.completions,
            fmt_value(w.arrivals as f64 / width),
            fmt_value(w.completions as f64 / width),
            fmt_value(w.mean_queue_depth(width)),
            fmt_value(w.mean_utilization(width)),
            q(0.5),
            q(0.95),
            q(0.99),
        ));
        for u in w.utilization(width) {
            out.push_str(&format!(",{}", fmt_value(u)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::span::{machine_spans, task_spans};
    use crate::window::{WindowConfig, WindowedMetrics};

    fn populated() -> MemoryRecorder {
        let mut r = MemoryRecorder::with_defaults(2);
        r.task_arrival(0, 0.0);
        r.task_dispatch(0, 0, 0.0, 0.0, 2.0);
        r.machine_busy(0, 0.0);
        r.task_arrival(1, 0.5);
        r.task_dispatch(1, 1, 0.5, 1.0, 1.5);
        r.machine_busy(1, 1.0);
        r
    }

    #[test]
    fn chrome_trace_is_valid_json_with_sorted_complete_events() {
        let rec = populated();
        let tasks = task_spans(rec.trace().iter());
        let machines = machine_spans(rec.trace().iter(), rec.makespan_seen());
        let json = chrome_trace(&tasks, &machines);
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = match v.get("traceEvents").expect("traceEvents key") {
            Value::Array(items) => items.clone(),
            _ => panic!("traceEvents is an array"),
        };
        let mut last_ts = f64::NEG_INFINITY;
        let mut xs = 0;
        for e in &events {
            match e.get("ph").and_then(|p| p.as_str()) {
                Some("M") => {}
                Some("X") => {
                    xs += 1;
                    let ts = e.get("ts").and_then(Value::as_f64).unwrap();
                    let dur = e.get("dur").and_then(Value::as_f64).unwrap();
                    assert!(ts >= last_ts, "X events sorted by ts");
                    assert!(dur >= 0.0);
                    last_ts = ts;
                }
                other => panic!("unexpected ph {other:?}"),
            }
        }
        assert_eq!(xs, tasks.len() + machines.len());
    }

    #[test]
    fn outage_spans_render_as_down_events_on_machine_rows() {
        let rec = populated();
        let tasks = task_spans(rec.trace().iter());
        let machines = machine_spans(rec.trace().iter(), rec.makespan_seen());
        let outages = [OutageSpan {
            machine: 1,
            start: 0.25,
            end: 0.75,
        }];
        let json = chrome_trace_with_outages(&tasks, &machines, &outages);
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = match v.get("traceEvents").expect("traceEvents key") {
            Value::Array(items) => items.clone(),
            _ => panic!("traceEvents is an array"),
        };
        let down: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("down"))
            .collect();
        assert_eq!(down.len(), 1);
        assert_eq!(down[0].get("pid").and_then(Value::as_f64), Some(1.0));
        assert_eq!(down[0].get("tid").and_then(Value::as_f64), Some(1.0));
        assert_eq!(
            down[0].get("dur").and_then(Value::as_f64),
            Some(0.5 * TRACE_US)
        );
    }

    #[test]
    fn prometheus_text_has_counters_gauges_and_histogram() {
        let text = prometheus_text(&populated());
        assert!(text.contains("flowsched_tasks_dispatched_total 2"));
        assert!(text.contains("flowsched_machine_utilization{machine=\"1\"}"));
        assert!(text.contains("# TYPE flowsched_flow_time histogram"));
        assert!(text.contains("flowsched_flow_time_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("flowsched_flow_time_count 2"));
        // flows are 2.0 and 2.0 → sum 4.
        assert!(text.contains("flowsched_flow_time_sum 4"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_monotone() {
        let text = prometheus_text(&populated());
        let mut last = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("flowsched_flow_time_bucket{le=\"") {
                let count: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                assert!(count >= last, "cumulative buckets are monotone");
                last = count;
            }
        }
        assert_eq!(last, 2);
    }

    #[test]
    fn every_prometheus_series_has_help_and_type() {
        let text = prometheus_text(&populated());
        let mut typed: Vec<&str> = Vec::new();
        let mut helped: Vec<&str> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.push(rest.split_whitespace().next().unwrap());
            } else if let Some(rest) = line.strip_prefix("# HELP ") {
                helped.push(rest.split_whitespace().next().unwrap());
            } else if !line.is_empty() {
                let name = line.split(['{', ' ']).next().unwrap();
                let family = name
                    .strip_suffix("_bucket")
                    .or_else(|| name.strip_suffix("_sum"))
                    .or_else(|| name.strip_suffix("_count"))
                    .filter(|f| typed.contains(f))
                    .unwrap_or(name);
                assert!(typed.contains(&family), "{name} has no # TYPE");
                assert!(helped.contains(&family), "{name} has no # HELP");
            }
        }
    }

    #[test]
    fn policy_label_lands_on_every_series() {
        let opts = PromOptions {
            policy: Some("eft:min:indexed"),
            extra_gauges: vec![],
        };
        let text = prometheus_text_with(&populated(), &opts);
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            assert!(
                line.contains("policy=\"eft:min:indexed\""),
                "unlabelled series line: {line}"
            );
        }
        assert!(text.contains("flowsched_tasks_dispatched_total{policy=\"eft:min:indexed\"} 2"));
        assert!(text
            .contains("flowsched_machine_utilization{policy=\"eft:min:indexed\",machine=\"1\"}"));
        assert!(text.contains("flowsched_flow_time_bucket{policy=\"eft:min:indexed\",le=\"+Inf\"}"));
    }

    #[test]
    fn extra_gauges_are_appended_with_help_and_type() {
        let opts = PromOptions {
            policy: None,
            extra_gauges: vec![ExtraGauge {
                name: "weighted_fmax",
                help: "Maximum weighted flow time of the run.",
                value: 12.5,
            }],
        };
        let text = prometheus_text_with(&populated(), &opts);
        assert!(text.contains("# HELP flowsched_weighted_fmax Maximum weighted flow time"));
        assert!(text.contains("# TYPE flowsched_weighted_fmax gauge"));
        assert!(text.contains("flowsched_weighted_fmax 12.5"));
    }

    #[test]
    fn lifecycle_counters_and_slo_breaches_are_exported() {
        let mut rec = populated();
        rec.machine_crash(0, 0.5);
        rec.machine_recover(0, 0.75);
        rec.slo_breach(4.0, 2.5, 2.0);
        let text = prometheus_text(&rec);
        assert!(text.contains("# HELP flowsched_machine_crashes_total"));
        assert!(text.contains("flowsched_machine_crashes_total 1"));
        assert!(text.contains("flowsched_machine_recoveries_total 1"));
        assert!(text.contains("# TYPE flowsched_slo_breaches_total counter"));
        assert!(text.contains("flowsched_slo_breaches_total 1"));
    }

    #[test]
    fn ring_overwrites_reach_the_prometheus_counter() {
        let mut cfg = crate::memory::ObsConfig::defaults(1);
        cfg.trace_capacity = 2;
        let mut rec = MemoryRecorder::new(&cfg);
        for i in 0..6 {
            rec.task_arrival(i, i as f64);
        }
        assert_eq!(rec.trace().dropped(), 4);
        let text = prometheus_text(&rec);
        assert!(text.contains("flowsched_trace_events_dropped_total 4"));
    }

    #[test]
    fn breach_marks_render_as_instant_events() {
        let rec = populated();
        let tasks = task_spans(rec.trace().iter());
        let machines = machine_spans(rec.trace().iter(), rec.makespan_seen());
        let marks = [BreachMark {
            at: 1.5,
            ratio: 2.5,
            bound: 2.0,
        }];
        let json = chrome_trace_full(&tasks, &machines, &[], &marks);
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = match v.get("traceEvents").expect("traceEvents key") {
            Value::Array(items) => items.clone(),
            _ => panic!("traceEvents is an array"),
        };
        let instants: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(
            instants[0].get("name").and_then(|n| n.as_str()),
            Some("slo_breach")
        );
        assert_eq!(
            instants[0].get("ts").and_then(Value::as_f64),
            Some(1.5 * TRACE_US)
        );
        assert_eq!(instants[0].get("s").and_then(|x| x.as_str()), Some("g"));
        let args = instants[0].get("args").unwrap();
        assert_eq!(args.get("ratio").and_then(Value::as_f64), Some(2.5));
        assert_eq!(args.get("bound").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn csv_has_one_row_per_window_and_machine_columns() {
        let mut w = WindowedMetrics::new(WindowConfig::defaults(2, 1.0));
        w.task_arrival(0, 0.1);
        w.task_dispatch(0, 0, 0.1, 0.1, 2.2);
        let csv = windows_to_csv(&w);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("window,t_start,t_end,arrivals"));
        assert!(lines[0].ends_with("utilization_m0,utilization_m1"));
        // Service [0.1, 2.3) touches windows 0, 1, 2.
        assert_eq!(lines.len(), 1 + 3);
        assert!(lines[1].starts_with("0,0,1,1,1,0,"));
        let cols: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(cols.len(), 13 + 2);
    }
}
