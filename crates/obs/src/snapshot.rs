//! Serializable observability snapshots and the human-readable summary.
//!
//! A snapshot is the frozen aggregate state of a [`MemoryRecorder`]
//! (counters, histogram, probe stats, utilization) — everything except
//! the individual trace events, which are exported separately by
//! [`trace_to_json`] because traces can be large and are usually only
//! wanted for debugging.

use serde::{Serialize, Value};

use crate::event::Event;
use crate::memory::MemoryRecorder;

/// One named counter value.
#[derive(Debug, Clone, Serialize)]
pub struct CounterSnapshot {
    /// Counter identifier (see `Counter::name`).
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Frozen flow-time histogram.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Range lower edge.
    pub lo: f64,
    /// Range upper edge.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Mass below the range.
    pub underflow: u64,
    /// Mass at or above the range end.
    pub overflow: u64,
    /// Total observations (bins + underflow + overflow).
    pub total: u64,
    /// Sum of every observation (what a Prometheus histogram calls
    /// `_sum`).
    pub sum: f64,
}

/// Aggregated probe statistics for one probe kind.
#[derive(Debug, Clone, Serialize)]
pub struct ProbeSnapshot {
    /// Probe kind identifier (see `ProbeKind::name`).
    pub kind: String,
    /// Probes of this kind.
    pub count: u64,
    /// Iterations summed over all probes of this kind.
    pub total_iterations: u64,
    /// Value carried by the most recent probe.
    pub last_value: f64,
    /// Largest value seen.
    pub max_value: f64,
}

/// The full serializable snapshot of a recorder.
#[derive(Debug, Clone, Serialize)]
pub struct ObsSnapshot {
    /// Counters that fired, in declaration order.
    pub counters: Vec<CounterSnapshot>,
    /// The flow-time histogram.
    pub flow_histogram: HistogramSnapshot,
    /// Per-kind probe aggregates (only kinds that fired).
    pub probes: Vec<ProbeSnapshot>,
    /// Accumulated busy time per machine.
    pub busy_time: Vec<f64>,
    /// Busy time / recorded makespan per machine.
    pub utilization: Vec<f64>,
    /// Largest completion timestamp recorded.
    pub makespan: f64,
    /// Events retained in the trace ring.
    pub trace_len: usize,
    /// Events overwritten because the ring was full.
    pub trace_dropped: u64,
}

impl ObsSnapshot {
    /// Pretty JSON rendering of the snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }
}

/// Renders one trace event as a JSON object (tag + payload fields).
fn event_to_value(ev: &Event) -> Value {
    let mut fields: Vec<(String, Value)> = vec![(
        "kind".to_string(),
        Value::String(ev.kind_name().to_string()),
    )];
    let num = |name: &str, v: f64| (name.to_string(), Value::Number(v));
    match *ev {
        Event::TaskArrival { task, at } => {
            fields.push(num("task", task as f64));
            fields.push(num("at", at));
        }
        Event::TaskDispatch {
            task,
            machine,
            start,
            ptime,
        } => {
            fields.push(num("task", task as f64));
            fields.push(num("machine", machine as f64));
            fields.push(num("start", start));
            fields.push(num("ptime", ptime));
        }
        Event::TaskCompletion {
            task,
            machine,
            at,
            flow,
        } => {
            fields.push(num("task", task as f64));
            fields.push(num("machine", machine as f64));
            fields.push(num("at", at));
            fields.push(num("flow", flow));
        }
        Event::MachineBusy { machine, at } => {
            fields.push(num("machine", machine as f64));
            fields.push(num("at", at));
        }
        Event::MachineIdle { machine, at }
        | Event::MachineCrash { machine, at }
        | Event::MachineRecover { machine, at } => {
            fields.push(num("machine", machine as f64));
            fields.push(num("at", at));
        }
        Event::SloBreach { at, ratio, bound } => {
            fields.push(num("at", at));
            fields.push(num("ratio", ratio));
            fields.push(num("bound", bound));
        }
        Event::SolverProbe {
            kind,
            iterations,
            value,
        } => {
            fields.push(("probe".to_string(), Value::String(kind.name().to_string())));
            fields.push(num("iterations", iterations as f64));
            fields.push(num("value", value));
        }
    }
    Value::Object(fields)
}

/// Exports the recorder's retained trace (oldest → newest) as a JSON
/// array of tagged event objects.
pub fn trace_to_json(rec: &MemoryRecorder) -> String {
    let items: Vec<Value> = rec.trace().iter().map(event_to_value).collect();
    serde_json::to_string_pretty(&Value::Array(items)).expect("trace serialization is infallible")
}

/// Renders a compact terminal summary of a recorder: counters, probe
/// aggregates, utilization, and the flow-time histogram sparkline.
/// This is what `flowsched-bench --bin obs` prints next to `SimReport`.
pub fn render_summary(rec: &MemoryRecorder) -> String {
    let mut out = String::new();
    out.push_str("observability summary\n");
    out.push_str("  counters:\n");
    let mut any = false;
    for (c, v) in rec.counters().iter_nonzero() {
        any = true;
        out.push_str(&format!("    {:<26} {v}\n", c.name()));
    }
    if !any {
        out.push_str("    (none fired)\n");
    }
    let snap = rec.snapshot();
    if !snap.probes.is_empty() {
        out.push_str("  solver probes:\n");
        for p in &snap.probes {
            out.push_str(&format!(
                "    {:<18} count={} iterations={} last={:.6} max={:.6}\n",
                p.kind, p.count, p.total_iterations, p.last_value, p.max_value
            ));
        }
    }
    let util = rec.utilization();
    if !util.is_empty() {
        let mean_util: f64 = util.iter().sum::<f64>() / util.len() as f64;
        out.push_str(&format!(
            "  utilization: mean {:.3} over {} machines (makespan {:.3})\n",
            mean_util,
            util.len(),
            rec.makespan_seen()
        ));
    }
    let h = rec.flow_histogram();
    out.push_str(&format!(
        "  flow histogram [{:.1}, {:.1}): {}  (n={}, under={}, over={})\n",
        snap.flow_histogram.lo,
        snap.flow_histogram.hi,
        h.sparkline(),
        h.total(),
        h.underflow(),
        h.overflow()
    ));
    out.push_str(&format!(
        "  trace: {} events retained, {} dropped\n",
        rec.trace().len(),
        rec.trace().dropped()
    ));
    if rec.trace().dropped() > 0 {
        out.push_str(&format!(
            "  WARNING: trace truncated — the ring (capacity {}) overwrote \
             the oldest events; span exports cover the retained tail only\n",
            rec.trace().capacity()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProbeKind;
    use crate::recorder::Recorder;

    fn populated() -> MemoryRecorder {
        let mut r = MemoryRecorder::with_defaults(2);
        r.task_arrival(0, 0.0);
        r.task_dispatch(0, 0, 0.0, 0.0, 2.0);
        r.machine_busy(0, 0.0);
        r.probe(ProbeKind::LoadFeasibility, 5, 1.25);
        r
    }

    #[test]
    fn snapshot_json_round_trips_through_the_vendored_parser() {
        let json = populated().snapshot().to_json();
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(v.get("counters").is_some());
        assert!(v.get("flow_histogram").is_some());
        let hist = v.get("flow_histogram").unwrap();
        assert!(hist.get("counts").is_some());
        assert!(v
            .get("probes")
            .unwrap()
            .get_index(0)
            .unwrap()
            .get("kind")
            .is_some());
    }

    #[test]
    fn trace_json_is_an_array_of_tagged_events() {
        let json = trace_to_json(&populated());
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let first = v.get_index(0).expect("non-empty trace");
        assert_eq!(
            first.get("kind"),
            Some(&Value::String("task_arrival".to_string()))
        );
        // Dispatch synthesizes a completion: arrival, dispatch,
        // completion, busy, probe.
        assert!(v.get_index(4).is_some());
        assert!(v.get_index(5).is_none());
    }

    #[test]
    fn summary_mentions_counters_histogram_and_trace() {
        let s = render_summary(&populated());
        assert!(s.contains("tasks_dispatched"));
        assert!(s.contains("flow histogram"));
        assert!(s.contains("load_feasibility"));
        assert!(s.contains("trace: 5 events"));
    }

    #[test]
    fn empty_summary_does_not_panic() {
        let s = render_summary(&MemoryRecorder::with_defaults(0));
        assert!(s.contains("(none fired)"));
    }
}
