//! The [`Recorder`] trait and its zero-cost no-op implementation.
//!
//! Instrumented hot paths are generic over `R: Recorder` and guard any
//! non-trivial argument computation behind `R::ENABLED`. With
//! [`NoopRecorder`] every hook body is empty and `ENABLED` is a
//! compile-time `false`, so monomorphization deletes both the calls and
//! the guarded argument computation — the instrumented code is the
//! uninstrumented code. `tests/obs_invariants.rs` pins the behavioural
//! half of that claim (identical schedules); the PR 1 bench baselines
//! (`BENCH_PR1.json`) guard the performance half.

use crate::counters::Counter;
use crate::event::ProbeKind;

/// Sink for instrumentation hooks.
///
/// All payloads are primitives the engines already have in registers;
/// hooks must be cheap and must not influence engine behaviour (in
/// particular they see tie-break outcomes, never alter them).
pub trait Recorder {
    /// `false` only for the no-op recorder: lets hot paths skip argument
    /// preparation entirely (`if R::ENABLED { … }` folds to nothing).
    const ENABLED: bool = true;

    /// A task was released. `task` is the engine's dispatch sequence
    /// number (== instance `TaskId` when fed in release order).
    fn task_arrival(&mut self, task: u64, at: f64);

    /// A task was placed on `machine`, starting service at `start`.
    fn task_dispatch(&mut self, task: u64, machine: u32, release: f64, start: f64, ptime: f64);

    /// `machine` transitioned idle→busy at `at`.
    fn machine_busy(&mut self, machine: u32, at: f64);

    /// `machine` transitioned busy→idle at `at`.
    fn machine_idle(&mut self, machine: u32, at: f64);

    /// `machine` crashed at `at` (fault injection). Defaulted to a no-op
    /// so recorders that predate the fault layer keep compiling; trace
    /// recorders override it to emit lifecycle events.
    #[inline(always)]
    fn machine_crash(&mut self, machine: u32, at: f64) {
        let _ = (machine, at);
    }

    /// `machine` recovered at `at` (fault injection). Defaulted like
    /// [`machine_crash`](Recorder::machine_crash).
    #[inline(always)]
    fn machine_recover(&mut self, machine: u32, at: f64) {
        let _ = (machine, at);
    }

    /// The live Fmax/OPT-proxy `ratio` crossed the paper envelope
    /// `bound` at sim-time `at` (see [`slo`](crate::slo)). Defaulted to
    /// a no-op like [`machine_crash`](Recorder::machine_crash); trace
    /// recorders override it to count the breach and emit an event.
    #[inline(always)]
    fn slo_breach(&mut self, at: f64, ratio: f64, bound: f64) {
        let _ = (at, ratio, bound);
    }

    /// A solver probe finished after `iterations` units of work with
    /// result/argument `value`.
    fn probe(&mut self, kind: ProbeKind, iterations: u64, value: f64);

    /// Bumps a counter.
    fn add(&mut self, c: Counter, delta: u64);
}

/// The recorder that records nothing, at no cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn task_arrival(&mut self, _task: u64, _at: f64) {}

    #[inline(always)]
    fn task_dispatch(
        &mut self,
        _task: u64,
        _machine: u32,
        _release: f64,
        _start: f64,
        _ptime: f64,
    ) {
    }

    #[inline(always)]
    fn machine_busy(&mut self, _machine: u32, _at: f64) {}

    #[inline(always)]
    fn machine_idle(&mut self, _machine: u32, _at: f64) {}

    #[inline(always)]
    fn probe(&mut self, _kind: ProbeKind, _iterations: u64, _value: f64) {}

    #[inline(always)]
    fn add(&mut self, _c: Counter, _delta: u64) {}
}

/// Fans every hook out to two recorders, so one instrumented run can
/// feed e.g. a [`MemoryRecorder`](crate::memory::MemoryRecorder)
/// (aggregates + trace) and a
/// [`WindowedMetrics`](crate::window::WindowedMetrics) (time series)
/// simultaneously. `ENABLED` is the OR of the halves, so
/// `Tee<NoopRecorder, NoopRecorder>` keeps the zero-cost contract and a
/// half that is a no-op costs nothing beyond the other half.
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B>(
    /// First recorder; hooks reach it before the second.
    pub A,
    /// Second recorder.
    pub B,
);

impl<A: Recorder, B: Recorder> Recorder for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn task_arrival(&mut self, task: u64, at: f64) {
        self.0.task_arrival(task, at);
        self.1.task_arrival(task, at);
    }

    #[inline]
    fn task_dispatch(&mut self, task: u64, machine: u32, release: f64, start: f64, ptime: f64) {
        self.0.task_dispatch(task, machine, release, start, ptime);
        self.1.task_dispatch(task, machine, release, start, ptime);
    }

    #[inline]
    fn machine_busy(&mut self, machine: u32, at: f64) {
        self.0.machine_busy(machine, at);
        self.1.machine_busy(machine, at);
    }

    #[inline]
    fn machine_idle(&mut self, machine: u32, at: f64) {
        self.0.machine_idle(machine, at);
        self.1.machine_idle(machine, at);
    }

    #[inline]
    fn machine_crash(&mut self, machine: u32, at: f64) {
        self.0.machine_crash(machine, at);
        self.1.machine_crash(machine, at);
    }

    #[inline]
    fn machine_recover(&mut self, machine: u32, at: f64) {
        self.0.machine_recover(machine, at);
        self.1.machine_recover(machine, at);
    }

    #[inline]
    fn slo_breach(&mut self, at: f64, ratio: f64, bound: f64) {
        self.0.slo_breach(at, ratio, bound);
        self.1.slo_breach(at, ratio, bound);
    }

    #[inline]
    fn probe(&mut self, kind: ProbeKind, iterations: u64, value: f64) {
        self.0.probe(kind, iterations, value);
        self.1.probe(kind, iterations, value);
    }

    #[inline]
    fn add(&mut self, c: Counter, delta: u64) {
        self.0.add(c, delta);
        self.1.add(c, delta);
    }
}

/// Forwarding through `&mut R` so engines can take `rec: &mut R` and
/// hand it down to helpers without re-borrow gymnastics. `ENABLED`
/// propagates, so `&mut NoopRecorder` is just as free as `NoopRecorder`.
impl<R: Recorder> Recorder for &mut R {
    const ENABLED: bool = R::ENABLED;

    #[inline(always)]
    fn task_arrival(&mut self, task: u64, at: f64) {
        (**self).task_arrival(task, at);
    }

    #[inline(always)]
    fn task_dispatch(&mut self, task: u64, machine: u32, release: f64, start: f64, ptime: f64) {
        (**self).task_dispatch(task, machine, release, start, ptime);
    }

    #[inline(always)]
    fn machine_busy(&mut self, machine: u32, at: f64) {
        (**self).machine_busy(machine, at);
    }

    #[inline(always)]
    fn machine_idle(&mut self, machine: u32, at: f64) {
        (**self).machine_idle(machine, at);
    }

    #[inline(always)]
    fn machine_crash(&mut self, machine: u32, at: f64) {
        (**self).machine_crash(machine, at);
    }

    #[inline(always)]
    fn machine_recover(&mut self, machine: u32, at: f64) {
        (**self).machine_recover(machine, at);
    }

    #[inline(always)]
    fn slo_breach(&mut self, at: f64, ratio: f64, bound: f64) {
        (**self).slo_breach(at, ratio, bound);
    }

    #[inline(always)]
    fn probe(&mut self, kind: ProbeKind, iterations: u64, value: f64) {
        (**self).probe(kind, iterations, value);
    }

    #[inline(always)]
    fn add(&mut self, c: Counter, delta: u64) {
        (**self).add(c, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_of<R: Recorder>(_r: &R) -> bool {
        R::ENABLED
    }

    #[test]
    fn noop_is_disabled_at_compile_time() {
        assert!(!enabled_of(&NoopRecorder));
        // Calls are accepted and do nothing.
        let mut r = NoopRecorder;
        r.task_arrival(0, 0.0);
        r.task_dispatch(0, 0, 0.0, 0.0, 1.0);
        r.machine_busy(0, 0.0);
        r.machine_idle(0, 1.0);
        r.probe(ProbeKind::SimplexSolve, 3, 1.5);
        r.add(Counter::TasksArrived, 1);
    }

    #[test]
    fn tee_reaches_both_recorders_and_ors_enabled() {
        use crate::memory::MemoryRecorder;
        let mut tee = Tee(MemoryRecorder::with_defaults(1), NoopRecorder);
        assert!(enabled_of(&tee));
        assert!(!enabled_of(&Tee(NoopRecorder, NoopRecorder)));
        tee.task_arrival(0, 0.0);
        tee.add(Counter::TasksArrived, 4);
        assert_eq!(tee.0.counters().get(Counter::TasksArrived), 5);
    }

    #[test]
    fn mut_ref_forwarding_reaches_the_recorder() {
        use crate::memory::MemoryRecorder;
        // Drive through a generic parameter so the `&mut R` blanket impl
        // (not the base impl via auto-deref) is the one exercised.
        fn drive<R: Recorder>(mut r: R) {
            r.task_arrival(0, 0.0);
            r.add(Counter::TasksArrived, 2);
        }
        let mut rec = MemoryRecorder::with_defaults(2);
        drive(&mut rec);
        assert!(enabled_of(&&mut rec));
        assert_eq!(rec.counters().get(Counter::TasksArrived), 3);
    }
}
