//! The in-memory recorder: counters + flow histogram + event ring.

use flowsched_stats::histogram::Histogram;

use crate::counters::{Counter, Counters};
use crate::event::{Event, EventRing, ProbeKind};
use crate::recorder::Recorder;
use crate::snapshot::{CounterSnapshot, HistogramSnapshot, ObsSnapshot, ProbeSnapshot};

/// Construction parameters for a [`MemoryRecorder`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Machines the run uses (sizes the per-machine busy-time bank).
    pub machines: usize,
    /// Events the trace ring retains (newest win).
    pub trace_capacity: usize,
    /// Flow-time histogram lower edge.
    pub hist_lo: f64,
    /// Flow-time histogram upper edge (larger flows land in the
    /// saturating overflow bin, so mass is never lost).
    pub hist_hi: f64,
    /// Flow-time histogram bin count.
    pub hist_bins: usize,
}

impl ObsConfig {
    /// Sensible defaults: 4096-event ring, 64 bins over `[0, 64)`.
    pub fn defaults(machines: usize) -> Self {
        ObsConfig {
            machines,
            trace_capacity: 4096,
            hist_lo: 0.0,
            hist_hi: 64.0,
            hist_bins: 64,
        }
    }
}

/// Per-kind probe aggregation.
#[derive(Debug, Clone, Copy, Default)]
struct ProbeStats {
    count: u64,
    total_iterations: u64,
    last_value: f64,
    max_value: f64,
}

/// A recorder that keeps everything in memory: monotonic [`Counters`],
/// a flow-time [`Histogram`], per-machine busy time, per-kind probe
/// aggregates, and a ring-buffered structured [`Event`] trace.
///
/// All storage is allocated at construction; the hook bodies only index,
/// add, and overwrite — recording does not allocate, so an instrumented
/// run's allocation profile matches the uninstrumented one.
#[derive(Debug, Clone)]
pub struct MemoryRecorder {
    counters: Counters,
    trace: EventRing,
    flow_hist: Histogram,
    busy_time: Vec<f64>,
    probes: [ProbeStats; ProbeKind::ALL.len()],
    /// Largest completion timestamp seen (projected makespan).
    max_completion: f64,
}

impl MemoryRecorder {
    /// Builds a recorder from an explicit configuration.
    ///
    /// # Panics
    /// Panics on a zero trace capacity, an empty histogram range, or
    /// zero bins (forwarded from the underlying types).
    pub fn new(config: &ObsConfig) -> Self {
        MemoryRecorder {
            counters: Counters::new(),
            trace: EventRing::new(config.trace_capacity),
            flow_hist: Histogram::new(config.hist_lo, config.hist_hi, config.hist_bins),
            busy_time: vec![0.0; config.machines],
            probes: [ProbeStats::default(); ProbeKind::ALL.len()],
            max_completion: 0.0,
        }
    }

    /// Builds a recorder with [`ObsConfig::defaults`].
    pub fn with_defaults(machines: usize) -> Self {
        MemoryRecorder::new(&ObsConfig::defaults(machines))
    }

    /// The counter bank.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The event trace (oldest retained → newest).
    pub fn trace(&self) -> &EventRing {
        &self.trace
    }

    /// The flow-time histogram; its `total()` equals the number of
    /// dispatched tasks (mass conservation, pinned by the property
    /// tests).
    pub fn flow_histogram(&self) -> &Histogram {
        &self.flow_hist
    }

    /// Accumulated busy time per machine.
    pub fn busy_time(&self) -> &[f64] {
        &self.busy_time
    }

    /// Largest completion timestamp recorded (the projected makespan of
    /// the traced run; 0 when no task was dispatched).
    pub fn makespan_seen(&self) -> f64 {
        self.max_completion
    }

    /// Per-machine utilization against the recorded makespan (all zeros
    /// when nothing ran).
    pub fn utilization(&self) -> Vec<f64> {
        self.busy_time
            .iter()
            .map(|&b| {
                if self.max_completion > 0.0 {
                    b / self.max_completion
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// `(count, total_iterations, last_value, max_value)` for one probe
    /// kind.
    pub fn probe_stats(&self, kind: ProbeKind) -> (u64, u64, f64, f64) {
        let idx = ProbeKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL");
        let p = &self.probes[idx];
        (p.count, p.total_iterations, p.last_value, p.max_value)
    }

    /// Folds another recorder's state into this one: counters add,
    /// histograms and busy time add, probe aggregates combine, the
    /// makespan takes the max, and `other`'s retained trace is appended
    /// to this ring (its already-dropped count carries over, and any
    /// events the append itself overwrites are counted too — the merged
    /// `trace_events_dropped` counter always equals the merged ring's
    /// [`EventRing::dropped`]).
    ///
    /// Merging shard recorders in any fixed order reproduces the
    /// counters and histogram of a single recorder that saw every hook —
    /// the property `tests/obs_invariants.rs` pins for `par_map` sweeps.
    ///
    /// # Panics
    /// Panics when the flow histograms disagree on shape (different
    /// `ObsConfig` ranges) or the machine counts differ.
    pub fn merge(&mut self, other: &MemoryRecorder) {
        assert_eq!(
            self.busy_time.len(),
            other.busy_time.len(),
            "recorder merge requires identical machine counts"
        );
        for (c, v) in other.counters.iter_nonzero() {
            self.counters.add(c, v);
        }
        let fresh = self.trace.extend_from(&other.trace);
        self.counters.add(Counter::TraceEventsDropped, fresh);
        self.flow_hist.merge(&other.flow_hist);
        for (b, o) in self.busy_time.iter_mut().zip(&other.busy_time) {
            *b += o;
        }
        for (p, o) in self.probes.iter_mut().zip(&other.probes) {
            if o.count > 0 {
                if p.count == 0 || o.max_value > p.max_value {
                    p.max_value = o.max_value;
                }
                p.count += o.count;
                p.total_iterations += o.total_iterations;
                p.last_value = o.last_value;
            }
        }
        if other.max_completion > self.max_completion {
            self.max_completion = other.max_completion;
        }
    }

    /// Pushes onto the trace ring, counting overwrites so the
    /// `trace_events_dropped` counter surfaces truncation in snapshots.
    #[inline]
    fn push_event(&mut self, ev: Event) {
        if self.trace.push(ev) {
            self.counters.add(Counter::TraceEventsDropped, 1);
        }
    }

    /// Freezes the recorder's state into a serializable snapshot.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            counters: self
                .counters
                .iter_nonzero()
                .map(|(c, v)| CounterSnapshot {
                    name: c.name().to_string(),
                    value: v,
                })
                .collect(),
            flow_histogram: HistogramSnapshot {
                lo: self.flow_hist_range().0,
                hi: self.flow_hist_range().1,
                counts: self.flow_hist.counts().to_vec(),
                underflow: self.flow_hist.underflow(),
                overflow: self.flow_hist.overflow(),
                sum: self.flow_hist.sum(),
                total: self.flow_hist.total(),
            },
            probes: ProbeKind::ALL
                .iter()
                .zip(&self.probes)
                .filter(|(_, p)| p.count > 0)
                .map(|(&k, p)| ProbeSnapshot {
                    kind: k.name().to_string(),
                    count: p.count,
                    total_iterations: p.total_iterations,
                    last_value: p.last_value,
                    max_value: p.max_value,
                })
                .collect(),
            busy_time: self.busy_time.clone(),
            utilization: self.utilization(),
            makespan: self.max_completion,
            trace_len: self.trace.len(),
            trace_dropped: self.trace.dropped(),
        }
    }

    fn flow_hist_range(&self) -> (f64, f64) {
        let bins = self.flow_hist.counts().len();
        let (lo, _) = self.flow_hist.bin_edges(0);
        let (_, hi) = self.flow_hist.bin_edges(bins - 1);
        (lo, hi)
    }
}

impl Recorder for MemoryRecorder {
    #[inline]
    fn task_arrival(&mut self, task: u64, at: f64) {
        self.counters.add(Counter::TasksArrived, 1);
        self.push_event(Event::TaskArrival { task, at });
    }

    #[inline]
    fn task_dispatch(&mut self, task: u64, machine: u32, release: f64, start: f64, ptime: f64) {
        let completion = start + ptime;
        let flow = completion - release;
        self.counters.add(Counter::TasksDispatched, 1);
        self.counters.add(Counter::TasksCompleted, 1);
        self.flow_hist.record(flow);
        if let Some(b) = self.busy_time.get_mut(machine as usize) {
            *b += ptime;
        }
        if completion > self.max_completion {
            self.max_completion = completion;
        }
        self.push_event(Event::TaskDispatch {
            task,
            machine,
            start,
            ptime,
        });
        self.push_event(Event::TaskCompletion {
            task,
            machine,
            at: completion,
            flow,
        });
    }

    #[inline]
    fn machine_busy(&mut self, machine: u32, at: f64) {
        self.counters.add(Counter::MachineBusyTransitions, 1);
        self.push_event(Event::MachineBusy { machine, at });
    }

    #[inline]
    fn machine_idle(&mut self, machine: u32, at: f64) {
        self.counters.add(Counter::MachineIdleTransitions, 1);
        self.push_event(Event::MachineIdle { machine, at });
    }

    #[inline]
    fn machine_crash(&mut self, machine: u32, at: f64) {
        self.counters.add(Counter::MachineCrashes, 1);
        self.push_event(Event::MachineCrash { machine, at });
    }

    #[inline]
    fn machine_recover(&mut self, machine: u32, at: f64) {
        self.counters.add(Counter::MachineRecoveries, 1);
        self.push_event(Event::MachineRecover { machine, at });
    }

    #[inline]
    fn slo_breach(&mut self, at: f64, ratio: f64, bound: f64) {
        self.counters.add(Counter::SloBreaches, 1);
        self.push_event(Event::SloBreach { at, ratio, bound });
    }

    #[inline]
    fn probe(&mut self, kind: ProbeKind, iterations: u64, value: f64) {
        let counter = match kind {
            ProbeKind::LoadFeasibility => Counter::FlowAugmentations,
            ProbeKind::SimplexSolve => Counter::SimplexPivots,
            ProbeKind::MatchingSolve => Counter::MatchingPhases,
        };
        match kind {
            ProbeKind::LoadFeasibility => self.counters.add(Counter::LoadProbes, 1),
            ProbeKind::SimplexSolve | ProbeKind::MatchingSolve => {}
        }
        self.counters.add(counter, iterations);
        let idx = ProbeKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL");
        let p = &mut self.probes[idx];
        p.count += 1;
        p.total_iterations += iterations;
        p.last_value = value;
        if p.count == 1 || value > p.max_value {
            p.max_value = value;
        }
        self.push_event(Event::SolverProbe {
            kind,
            iterations,
            value,
        });
    }

    #[inline]
    fn add(&mut self, c: Counter, delta: u64) {
        self.counters.add(c, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_synthesizes_completion_and_flow() {
        let mut r = MemoryRecorder::with_defaults(2);
        r.task_arrival(0, 1.0);
        r.task_dispatch(0, 1, 1.0, 2.5, 2.0);
        assert_eq!(r.counters().get(Counter::TasksArrived), 1);
        assert_eq!(r.counters().get(Counter::TasksDispatched), 1);
        assert_eq!(r.counters().get(Counter::TasksCompleted), 1);
        assert_eq!(r.flow_histogram().total(), 1);
        assert_eq!(r.busy_time(), &[0.0, 2.0]);
        assert_eq!(r.makespan_seen(), 4.5);
        let events = r.trace().to_vec();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[2],
            Event::TaskCompletion {
                task: 0,
                machine: 1,
                at: 4.5,
                flow: 3.5
            }
        );
    }

    #[test]
    fn probe_aggregation_tracks_count_iterations_and_max() {
        let mut r = MemoryRecorder::with_defaults(1);
        r.probe(ProbeKind::LoadFeasibility, 4, 2.0);
        r.probe(ProbeKind::LoadFeasibility, 6, 1.5);
        let (count, iters, last, max) = r.probe_stats(ProbeKind::LoadFeasibility);
        assert_eq!((count, iters), (2, 10));
        assert_eq!(last, 1.5);
        assert_eq!(max, 2.0);
        assert_eq!(r.counters().get(Counter::LoadProbes), 2);
        assert_eq!(r.counters().get(Counter::FlowAugmentations), 10);
    }

    #[test]
    fn negative_probe_values_do_not_fake_a_maximum() {
        let mut r = MemoryRecorder::with_defaults(1);
        r.probe(ProbeKind::SimplexSolve, 1, -3.0);
        let (_, _, last, max) = r.probe_stats(ProbeKind::SimplexSolve);
        assert_eq!(last, -3.0);
        assert_eq!(max, -3.0, "first value is the maximum, not the 0 default");
    }

    #[test]
    fn utilization_is_busy_over_makespan() {
        let mut r = MemoryRecorder::with_defaults(2);
        r.task_dispatch(0, 0, 0.0, 0.0, 2.0);
        r.task_dispatch(1, 1, 0.0, 0.0, 1.0);
        assert_eq!(r.utilization(), vec![1.0, 0.5]);
    }

    #[test]
    fn empty_recorder_snapshot_is_well_formed() {
        let r = MemoryRecorder::with_defaults(3);
        let s = r.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.probes.is_empty());
        assert_eq!(s.makespan, 0.0);
        assert_eq!(s.utilization, vec![0.0; 3]);
        assert_eq!(s.flow_histogram.total, 0);
    }

    #[test]
    fn ring_overwrites_surface_in_the_dropped_counter() {
        let mut cfg = ObsConfig::defaults(1);
        cfg.trace_capacity = 2;
        let mut r = MemoryRecorder::new(&cfg);
        for i in 0..5 {
            r.task_arrival(i, i as f64);
        }
        assert_eq!(r.counters().get(Counter::TraceEventsDropped), 3);
        assert_eq!(r.trace().dropped(), 3, "counter mirrors the ring");
        let snap = r.snapshot();
        assert_eq!(snap.trace_dropped, 3);
        assert!(snap
            .counters
            .iter()
            .any(|c| c.name == "trace_events_dropped" && c.value == 3));
    }

    #[test]
    fn merge_equals_one_recorder_that_saw_every_hook() {
        let drive_a = |r: &mut MemoryRecorder| {
            r.task_arrival(0, 0.0);
            r.task_dispatch(0, 0, 0.0, 0.5, 2.0);
            r.machine_busy(0, 0.5);
            r.probe(ProbeKind::LoadFeasibility, 4, 2.0);
        };
        let drive_b = |r: &mut MemoryRecorder| {
            r.task_arrival(1, 1.0);
            r.task_dispatch(1, 1, 1.0, 1.0, 5.0);
            r.probe(ProbeKind::LoadFeasibility, 2, 3.5);
            r.probe(ProbeKind::SimplexSolve, 7, 1.0);
        };
        let mut a = MemoryRecorder::with_defaults(2);
        drive_a(&mut a);
        let mut b = MemoryRecorder::with_defaults(2);
        drive_b(&mut b);
        a.merge(&b);

        let mut whole = MemoryRecorder::with_defaults(2);
        drive_a(&mut whole);
        drive_b(&mut whole);

        for (c, v) in whole.counters().iter() {
            assert_eq!(a.counters().get(c), v, "counter {}", c.name());
        }
        assert_eq!(a.flow_histogram().counts(), whole.flow_histogram().counts());
        assert_eq!(a.busy_time(), whole.busy_time());
        assert_eq!(a.makespan_seen(), whole.makespan_seen());
        for k in ProbeKind::ALL {
            assert_eq!(a.probe_stats(k), whole.probe_stats(k), "{}", k.name());
        }
        assert_eq!(a.trace().to_vec(), whole.trace().to_vec());
    }

    #[test]
    fn lifecycle_hooks_count_and_trace() {
        let mut r = MemoryRecorder::with_defaults(2);
        r.machine_crash(1, 2.0);
        r.machine_recover(1, 5.0);
        assert_eq!(r.counters().get(Counter::MachineCrashes), 1);
        assert_eq!(r.counters().get(Counter::MachineRecoveries), 1);
        let evs = r.trace().to_vec();
        assert_eq!(
            evs,
            vec![
                Event::MachineCrash {
                    machine: 1,
                    at: 2.0
                },
                Event::MachineRecover {
                    machine: 1,
                    at: 5.0
                },
            ]
        );
    }

    #[test]
    fn slo_breach_counts_and_traces() {
        let mut r = MemoryRecorder::with_defaults(2);
        r.slo_breach(8.0, 3.4, 3.0);
        assert_eq!(r.counters().get(Counter::SloBreaches), 1);
        assert_eq!(
            r.trace().to_vec(),
            vec![Event::SloBreach {
                at: 8.0,
                ratio: 3.4,
                bound: 3.0
            }]
        );
    }

    #[test]
    #[should_panic(expected = "identical machine counts")]
    fn merge_rejects_mismatched_machine_counts() {
        let mut a = MemoryRecorder::with_defaults(2);
        let b = MemoryRecorder::with_defaults(3);
        a.merge(&b);
    }

    #[test]
    fn out_of_range_machine_is_ignored_not_fatal() {
        // A recorder sized for the simulation can still be fed solver
        // hooks that mention no machine; an engine bug mentioning a bogus
        // machine must not panic the observer.
        let mut r = MemoryRecorder::with_defaults(1);
        r.task_dispatch(0, 9, 0.0, 0.0, 1.0);
        assert_eq!(r.busy_time(), &[0.0]);
        assert_eq!(r.counters().get(Counter::TasksDispatched), 1);
    }
}
