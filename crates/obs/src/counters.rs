//! Monotonic event counters.
//!
//! A fixed, closed set of counters keeps the storage a flat array — one
//! add is an indexed `u64` increment, no hashing, no allocation — while
//! staying self-describing through [`Counter::name`] for snapshots and
//! summaries. Counters only ever increase; `tests/obs_invariants.rs`
//! pins that monotonicity through the public recorder API.

/// Everything the instrumented engines count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Tasks released to a scheduling engine.
    TasksArrived,
    /// Tasks irrevocably placed on a machine.
    TasksDispatched,
    /// Task completions (projected at dispatch time for immediate-dispatch
    /// engines, actual for the FIFO event loop).
    TasksCompleted,
    /// Idle→busy machine transitions.
    MachineBusyTransitions,
    /// Busy→idle machine transitions.
    MachineIdleTransitions,
    /// Machine crashes injected by a fault plan.
    MachineCrashes,
    /// Machine recoveries injected by a fault plan.
    MachineRecoveries,
    /// λ-feasibility probes answered by the max-flow oracle.
    LoadProbes,
    /// Dinic augmenting-path searches across all load probes.
    FlowAugmentations,
    /// Simplex pivots across all LP solves.
    SimplexPivots,
    /// Hopcroft–Karp BFS phases across all matching solves.
    MatchingPhases,
    /// Successful augmenting paths across all matching solves.
    MatchingAugmentations,
    /// Trace events overwritten because the ring buffer was full.
    TraceEventsDropped,
}

impl Counter {
    /// Every counter, in snapshot order.
    pub const ALL: [Counter; 13] = [
        Counter::TasksArrived,
        Counter::TasksDispatched,
        Counter::TasksCompleted,
        Counter::MachineBusyTransitions,
        Counter::MachineIdleTransitions,
        Counter::MachineCrashes,
        Counter::MachineRecoveries,
        Counter::LoadProbes,
        Counter::FlowAugmentations,
        Counter::SimplexPivots,
        Counter::MatchingPhases,
        Counter::MatchingAugmentations,
        Counter::TraceEventsDropped,
    ];

    /// Stable snake_case identifier used in snapshots and summaries.
    pub fn name(self) -> &'static str {
        match self {
            Counter::TasksArrived => "tasks_arrived",
            Counter::TasksDispatched => "tasks_dispatched",
            Counter::TasksCompleted => "tasks_completed",
            Counter::MachineBusyTransitions => "machine_busy_transitions",
            Counter::MachineIdleTransitions => "machine_idle_transitions",
            Counter::MachineCrashes => "machine_crashes",
            Counter::MachineRecoveries => "machine_recoveries",
            Counter::LoadProbes => "load_probes",
            Counter::FlowAugmentations => "flow_augmentations",
            Counter::SimplexPivots => "simplex_pivots",
            Counter::MatchingPhases => "matching_phases",
            Counter::MatchingAugmentations => "matching_augmentations",
            Counter::TraceEventsDropped => "trace_events_dropped",
        }
    }

    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|&c| c == self)
            .expect("every counter is in ALL")
    }
}

/// A flat bank of monotonic counters.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    values: [u64; Counter::ALL.len()],
}

impl Counters {
    /// All-zero counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` to a counter (saturating; counters never wrap back
    /// down, preserving monotonicity even in pathological runs).
    #[inline]
    pub fn add(&mut self, c: Counter, delta: u64) {
        let v = &mut self.values[c.index()];
        *v = v.saturating_add(delta);
    }

    /// Current value of a counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c.index()]
    }

    /// Iterates `(counter, value)` in snapshot order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Iterates only the counters that fired.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        self.iter().filter(|&(_, v)| v > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_accumulate() {
        let mut c = Counters::new();
        for (_, v) in c.iter() {
            assert_eq!(v, 0);
        }
        c.add(Counter::TasksArrived, 3);
        c.add(Counter::TasksArrived, 2);
        assert_eq!(c.get(Counter::TasksArrived), 5);
        assert_eq!(c.get(Counter::TasksDispatched), 0);
    }

    #[test]
    fn saturating_add_never_wraps() {
        let mut c = Counters::new();
        c.add(Counter::SimplexPivots, u64::MAX);
        c.add(Counter::SimplexPivots, 10);
        assert_eq!(c.get(Counter::SimplexPivots), u64::MAX);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn nonzero_iteration_skips_untouched() {
        let mut c = Counters::new();
        c.add(Counter::LoadProbes, 7);
        let fired: Vec<_> = c.iter_nonzero().collect();
        assert_eq!(fired, vec![(Counter::LoadProbes, 7)]);
    }
}
