//! Monotonic event counters.
//!
//! A fixed, closed set of counters keeps the storage a flat array — one
//! add is an indexed `u64` increment, no hashing, no allocation — while
//! staying self-describing through [`Counter::name`] for snapshots and
//! summaries. Counters only ever increase; `tests/obs_invariants.rs`
//! pins that monotonicity through the public recorder API.

/// Everything the instrumented engines count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Tasks released to a scheduling engine.
    TasksArrived,
    /// Tasks irrevocably placed on a machine.
    TasksDispatched,
    /// Task completions (projected at dispatch time for immediate-dispatch
    /// engines, actual for the FIFO event loop).
    TasksCompleted,
    /// Idle→busy machine transitions.
    MachineBusyTransitions,
    /// Busy→idle machine transitions.
    MachineIdleTransitions,
    /// Machine crashes injected by a fault plan.
    MachineCrashes,
    /// Machine recoveries injected by a fault plan.
    MachineRecoveries,
    /// λ-feasibility probes answered by the max-flow oracle.
    LoadProbes,
    /// Dinic augmenting-path searches across all load probes.
    FlowAugmentations,
    /// Simplex pivots across all LP solves.
    SimplexPivots,
    /// Hopcroft–Karp BFS phases across all matching solves.
    MatchingPhases,
    /// Successful augmenting paths across all matching solves.
    MatchingAugmentations,
    /// Trace events overwritten because the ring buffer was full.
    TraceEventsDropped,
    /// Index-tree descents taken by the indexed EFT kernel
    /// (`leftmost_le`/`rightmost_le`/`collect_le` walks).
    IndexedDescents,
    /// Dispatches where the indexed kernel fell back to a scalar scan
    /// (explicit sets that straddle cluster boundaries).
    ScalarFallbackScans,
    /// Lazy-heap repairs in the clustered kernel: stale entries re-keyed
    /// or discarded while picking a minimum.
    HeapSelfHeals,
    /// SLO envelope breaches flagged by the [`slo`](crate::slo) monitor.
    SloBreaches,
}

impl Counter {
    /// Every counter, in snapshot order.
    pub const ALL: [Counter; 17] = [
        Counter::TasksArrived,
        Counter::TasksDispatched,
        Counter::TasksCompleted,
        Counter::MachineBusyTransitions,
        Counter::MachineIdleTransitions,
        Counter::MachineCrashes,
        Counter::MachineRecoveries,
        Counter::LoadProbes,
        Counter::FlowAugmentations,
        Counter::SimplexPivots,
        Counter::MatchingPhases,
        Counter::MatchingAugmentations,
        Counter::TraceEventsDropped,
        Counter::IndexedDescents,
        Counter::ScalarFallbackScans,
        Counter::HeapSelfHeals,
        Counter::SloBreaches,
    ];

    /// Stable snake_case identifier used in snapshots and summaries.
    pub fn name(self) -> &'static str {
        match self {
            Counter::TasksArrived => "tasks_arrived",
            Counter::TasksDispatched => "tasks_dispatched",
            Counter::TasksCompleted => "tasks_completed",
            Counter::MachineBusyTransitions => "machine_busy_transitions",
            Counter::MachineIdleTransitions => "machine_idle_transitions",
            Counter::MachineCrashes => "machine_crashes",
            Counter::MachineRecoveries => "machine_recoveries",
            Counter::LoadProbes => "load_probes",
            Counter::FlowAugmentations => "flow_augmentations",
            Counter::SimplexPivots => "simplex_pivots",
            Counter::MatchingPhases => "matching_phases",
            Counter::MatchingAugmentations => "matching_augmentations",
            Counter::TraceEventsDropped => "trace_events_dropped",
            Counter::IndexedDescents => "indexed_descents",
            Counter::ScalarFallbackScans => "scalar_fallback_scans",
            Counter::HeapSelfHeals => "heap_self_heals",
            Counter::SloBreaches => "slo_breaches",
        }
    }

    /// One-line Prometheus `# HELP` text for the exposition format.
    pub fn help(self) -> &'static str {
        match self {
            Counter::TasksArrived => "Tasks released to a scheduling engine.",
            Counter::TasksDispatched => "Tasks irrevocably placed on a machine.",
            Counter::TasksCompleted => {
                "Task completions (projected at dispatch for immediate-dispatch engines)."
            }
            Counter::MachineBusyTransitions => "Idle-to-busy machine transitions.",
            Counter::MachineIdleTransitions => "Busy-to-idle machine transitions.",
            Counter::MachineCrashes => "Machine crashes injected by a fault plan.",
            Counter::MachineRecoveries => "Machine recoveries injected by a fault plan.",
            Counter::LoadProbes => "Lambda-feasibility probes answered by the max-flow oracle.",
            Counter::FlowAugmentations => "Dinic augmenting-path searches across all load probes.",
            Counter::SimplexPivots => "Simplex pivots across all LP solves.",
            Counter::MatchingPhases => "Hopcroft-Karp BFS phases across all matching solves.",
            Counter::MatchingAugmentations => {
                "Successful augmenting paths across all matching solves."
            }
            Counter::TraceEventsDropped => {
                "Trace events overwritten because the ring buffer was full."
            }
            Counter::IndexedDescents => "Index-tree descents taken by the indexed EFT kernel.",
            Counter::ScalarFallbackScans => {
                "Dispatches where the indexed kernel fell back to a scalar scan."
            }
            Counter::HeapSelfHeals => {
                "Stale heap entries re-keyed or discarded by the clustered kernel."
            }
            Counter::SloBreaches => "SLO envelope breaches flagged by the slo monitor.",
        }
    }

    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|&c| c == self)
            .expect("every counter is in ALL")
    }
}

/// A flat bank of monotonic counters.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    values: [u64; Counter::ALL.len()],
}

impl Counters {
    /// All-zero counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` to a counter (saturating; counters never wrap back
    /// down, preserving monotonicity even in pathological runs).
    #[inline]
    pub fn add(&mut self, c: Counter, delta: u64) {
        let v = &mut self.values[c.index()];
        *v = v.saturating_add(delta);
    }

    /// Current value of a counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c.index()]
    }

    /// Iterates `(counter, value)` in snapshot order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Iterates only the counters that fired.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        self.iter().filter(|&(_, v)| v > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_accumulate() {
        let mut c = Counters::new();
        for (_, v) in c.iter() {
            assert_eq!(v, 0);
        }
        c.add(Counter::TasksArrived, 3);
        c.add(Counter::TasksArrived, 2);
        assert_eq!(c.get(Counter::TasksArrived), 5);
        assert_eq!(c.get(Counter::TasksDispatched), 0);
    }

    #[test]
    fn saturating_add_never_wraps() {
        let mut c = Counters::new();
        c.add(Counter::SimplexPivots, u64::MAX);
        c.add(Counter::SimplexPivots, 10);
        assert_eq!(c.get(Counter::SimplexPivots), u64::MAX);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn nonzero_iteration_skips_untouched() {
        let mut c = Counters::new();
        c.add(Counter::LoadProbes, 7);
        let fired: Vec<_> = c.iter_nonzero().collect();
        assert_eq!(fired, vec![(Counter::LoadProbes, 7)]);
    }
}
