//! Structured trace events and the fixed-capacity ring that stores them.
//!
//! Events use only primitive payloads (`u64` task sequence numbers,
//! `u32` machine indices, `f64` times) so the recorder crate stays free
//! of scheduling-domain dependencies and an event is a small `Copy`
//! value — pushing one is a couple of stores into a pre-allocated ring.
//!
//! Immediate-dispatch engines know a task's completion the instant it is
//! placed, so `TaskCompletion` events are *projected*: they are recorded
//! at dispatch time carrying the future completion timestamp. The trace
//! is therefore ordered by **record order** (dispatch order), and
//! per-machine timestamps are monotone, but global timestamps need not
//! be — the same convention dslab's event traces use for planned events.

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A task was released.
    TaskArrival {
        /// Engine-assigned sequence number (dispatch order; equals the
        /// instance `TaskId` when tasks are fed in release order).
        task: u64,
        /// Release time.
        at: f64,
    },
    /// A task was irrevocably placed on a machine.
    TaskDispatch {
        /// Sequence number (see [`Event::TaskArrival::task`]).
        task: u64,
        /// Chosen machine.
        machine: u32,
        /// Start of service.
        start: f64,
        /// Processing time.
        ptime: f64,
    },
    /// A task finished (projected at dispatch for immediate dispatch).
    TaskCompletion {
        /// Sequence number.
        task: u64,
        /// Machine it ran on.
        machine: u32,
        /// Completion time.
        at: f64,
        /// Flow time `completion − release`.
        flow: f64,
    },
    /// A machine went idle→busy.
    MachineBusy {
        /// Machine index.
        machine: u32,
        /// Transition time.
        at: f64,
    },
    /// A machine went busy→idle.
    MachineIdle {
        /// Machine index.
        machine: u32,
        /// Transition time.
        at: f64,
    },
    /// A machine crashed (fault injection): it leaves every processing
    /// set until the matching [`Event::MachineRecover`].
    MachineCrash {
        /// Machine index.
        machine: u32,
        /// Crash time.
        at: f64,
    },
    /// A machine recovered from a crash (fault injection).
    MachineRecover {
        /// Machine index.
        machine: u32,
        /// Recovery time.
        at: f64,
    },
    /// The live Fmax/OPT-proxy ratio crossed a paper envelope (see
    /// [`slo`](crate::slo)).
    SloBreach {
        /// Sim-time at which the breach was evaluated (window end).
        at: f64,
        /// Observed Fmax/OPT-proxy ratio.
        ratio: f64,
        /// The envelope that was crossed (e.g. `3 − 2/k`).
        bound: f64,
    },
    /// A solver probe ran (λ-feasibility check, LP solve, matching solve).
    SolverProbe {
        /// What kind of probe.
        kind: ProbeKind,
        /// Iteration count the probe spent (augmentations, pivots, phases).
        iterations: u64,
        /// Probe argument or result (λ for feasibility probes, objective
        /// for LP solves, matching size for matching solves).
        value: f64,
    },
}

impl Event {
    /// Stable snake_case tag for snapshots and summaries.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::TaskArrival { .. } => "task_arrival",
            Event::TaskDispatch { .. } => "task_dispatch",
            Event::TaskCompletion { .. } => "task_completion",
            Event::MachineBusy { .. } => "machine_busy",
            Event::MachineIdle { .. } => "machine_idle",
            Event::MachineCrash { .. } => "machine_crash",
            Event::MachineRecover { .. } => "machine_recover",
            Event::SloBreach { .. } => "slo_breach",
            Event::SolverProbe { .. } => "solver_probe",
        }
    }

    /// The timestamp the event carries (`NaN`-free by construction);
    /// solver probes are timeless and report 0.
    pub fn time(&self) -> f64 {
        match *self {
            Event::TaskArrival { at, .. }
            | Event::TaskCompletion { at, .. }
            | Event::MachineBusy { at, .. }
            | Event::MachineIdle { at, .. }
            | Event::MachineCrash { at, .. }
            | Event::MachineRecover { at, .. }
            | Event::SloBreach { at, .. } => at,
            Event::TaskDispatch { start, .. } => start,
            Event::SolverProbe { .. } => 0.0,
        }
    }
}

/// Which solver emitted a [`Event::SolverProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// Max-flow λ-feasibility probe (`loadflow::MaxLoadProber`).
    LoadFeasibility,
    /// Two-phase simplex LP solve (`loadflow::max_load_lp`).
    SimplexSolve,
    /// Hopcroft–Karp matching solve (`matching::BipartiteMatcher`).
    MatchingSolve,
}

impl ProbeKind {
    /// Every kind, in snapshot order.
    pub const ALL: [ProbeKind; 3] = [
        ProbeKind::LoadFeasibility,
        ProbeKind::SimplexSolve,
        ProbeKind::MatchingSolve,
    ];

    /// Stable snake_case identifier.
    pub fn name(self) -> &'static str {
        match self {
            ProbeKind::LoadFeasibility => "load_feasibility",
            ProbeKind::SimplexSolve => "simplex_solve",
            ProbeKind::MatchingSolve => "matching_solve",
        }
    }
}

/// Fixed-capacity event ring: the newest `capacity` events win, the
/// oldest are overwritten (and counted as dropped). The buffer is
/// allocated once at construction; `push` never allocates.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<Event>,
    /// Index of the oldest retained event when the ring has wrapped.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring retaining the newest `capacity` events.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring needs a positive capacity");
        EventRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest when full. Returns
    /// `true` when an old event was overwritten (dropped), so callers
    /// that keep a loss counter (e.g. `Counter::TraceEventsDropped`)
    /// can bump it without re-reading [`EventRing::dropped`].
    #[inline]
    pub fn push(&mut self, ev: Event) -> bool {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
            false
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
            true
        }
    }

    /// Appends every event `other` retained (oldest → newest) and folds
    /// `other`'s already-dropped count into this ring's, so the merged
    /// ring reports the union's total loss. Returns how many events were
    /// *freshly* overwritten by the appends themselves (the carried
    /// losses are `other.dropped()`).
    pub fn extend_from(&mut self, other: &EventRing) -> u64 {
        let mut fresh = 0;
        for &ev in other.iter() {
            if self.push(ev) {
                fresh += 1;
            }
        }
        self.dropped += other.dropped;
        fresh
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &Event> + '_ {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Retained events oldest → newest as an owned vector.
    pub fn to_vec(&self) -> Vec<Event> {
        self.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(task: u64) -> Event {
        Event::TaskArrival {
            task,
            at: task as f64,
        }
    }

    #[test]
    fn retains_everything_below_capacity() {
        let mut r = EventRing::new(8);
        for i in 0..5 {
            r.push(arrival(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let tasks: Vec<u64> = r
            .iter()
            .map(|e| match e {
                Event::TaskArrival { task, .. } => *task,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tasks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut r = EventRing::new(3);
        for i in 0..7 {
            r.push(arrival(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        let tasks: Vec<u64> = r
            .to_vec()
            .iter()
            .map(|e| match e {
                Event::TaskArrival { task, .. } => *task,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tasks, vec![4, 5, 6]);
    }

    #[test]
    fn wraps_repeatedly_in_order() {
        let mut r = EventRing::new(2);
        for i in 0..100 {
            r.push(arrival(i));
            let v = r.to_vec();
            let last = match v.last().unwrap() {
                Event::TaskArrival { task, .. } => *task,
                _ => unreachable!(),
            };
            assert_eq!(last, i, "newest event is always last");
        }
        assert_eq!(r.dropped(), 98);
    }

    #[test]
    fn kind_names_cover_every_variant() {
        let evs = [
            Event::TaskArrival { task: 0, at: 0.0 },
            Event::TaskDispatch {
                task: 0,
                machine: 0,
                start: 0.0,
                ptime: 1.0,
            },
            Event::TaskCompletion {
                task: 0,
                machine: 0,
                at: 1.0,
                flow: 1.0,
            },
            Event::MachineBusy {
                machine: 0,
                at: 0.0,
            },
            Event::MachineIdle {
                machine: 0,
                at: 1.0,
            },
            Event::MachineCrash {
                machine: 0,
                at: 2.0,
            },
            Event::MachineRecover {
                machine: 0,
                at: 3.0,
            },
            Event::SloBreach {
                at: 4.0,
                ratio: 3.1,
                bound: 3.0,
            },
            Event::SolverProbe {
                kind: ProbeKind::LoadFeasibility,
                iterations: 1,
                value: 2.0,
            },
        ];
        let mut names: Vec<&str> = evs.iter().map(|e| e.kind_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), evs.len());
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = EventRing::new(0);
    }

    #[test]
    fn push_reports_overwrites() {
        let mut r = EventRing::new(2);
        assert!(!r.push(arrival(0)));
        assert!(!r.push(arrival(1)));
        assert!(r.push(arrival(2)));
    }

    #[test]
    fn extend_from_concatenates_and_carries_losses() {
        let mut a = EventRing::new(8);
        a.push(arrival(0));
        let mut b = EventRing::new(2);
        for i in 10..15 {
            b.push(arrival(i)); // retains 13, 14; drops 3
        }
        let fresh = a.extend_from(&b);
        assert_eq!(fresh, 0, "capacity 8 absorbs both retained events");
        assert_eq!(a.len(), 3);
        assert_eq!(a.dropped(), 3, "b's losses carry over");
        let tasks: Vec<u64> = a
            .iter()
            .map(|e| match e {
                Event::TaskArrival { task, .. } => *task,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tasks, vec![0, 13, 14]);
    }
}
