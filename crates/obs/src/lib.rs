//! # flowsched-obs — observability for the scheduling engine
//!
//! An always-available, zero-cost-when-disabled instrumentation layer
//! in the spirit of dslab's event-trace recorders: the paper's claims
//! (tail flow time, backlog growth, per-machine load — Figures 10/11,
//! Theorems 1/6) are all distributional, so a run needs a window beyond
//! the post-hoc `SimReport`.
//!
//! The layer has three pieces:
//!
//! - **[`Recorder`]** — the hook trait instrumented engines are generic
//!   over. [`NoopRecorder`] has empty bodies and a compile-time
//!   `ENABLED = false`, so uninstrumented call sites monomorphize to the
//!   exact pre-instrumentation code: no calls, no argument preparation,
//!   no allocation.
//! - **[`MemoryRecorder`]** — the real implementation: monotonic
//!   [`Counters`], a flow-time [`Histogram`](flowsched_stats::histogram::Histogram)
//!   (via the snapshot), per-machine busy time, per-kind solver-probe
//!   aggregates, and a ring-buffered structured [`Event`] trace
//!   ([`EventRing`]) where the newest events win.
//! - **Snapshots** — [`ObsSnapshot`] freezes the aggregates into a
//!   serde-serializable record ([`ObsSnapshot::to_json`]);
//!   [`trace_to_json`] exports the raw event trace;
//!   [`render_summary`] prints the terminal summary that
//!   `flowsched-bench --bin obs` shows next to `SimReport`.
//!
//! On top of the recorders sits the telemetry pipeline:
//!
//! - **[`window`]** — [`WindowedMetrics`], a tumbling-window time-series
//!   recorder (queue depth, per-machine utilization, arrival/completion
//!   rates, windowed flow percentiles) whose memory scales with windows,
//!   not tasks.
//! - **[`span`]** — task lifecycle spans (release→start→finish) and
//!   machine busy intervals reconstructed from the event trace.
//! - **[`export`]** — Chrome trace-event JSON (Perfetto), Prometheus
//!   text exposition, and CSV time series; driven end-to-end by
//!   `flowsched-bench --bin timeline`.
//! - **[`shard`]** — per-job recorder shards for
//!   `flowsched_parallel::par_map` sweeps, merged in job order into a
//!   snapshot identical to a single-threaded run's.
//! - **[`pipeline`]** — *wall-clock* stage spans, nanosecond histograms,
//!   and backpressure gauges for the sharded dispatch pipeline
//!   ([`PipelineMetrics`] / [`NoopPipeline`], same zero-cost contract as
//!   the recorders but over `std::time::Instant`).
//! - **[`slo`]** — the theory-aware [`SloMonitor`]: live `Fmax`/OPT-proxy
//!   ratios per tumbling window, alarmed against the paper envelopes
//!   (`3 − 2/k` per Corollary 1, `m − k + 1` for interval adversaries)
//!   and emitted as [`Event::SloBreach`] rows through the normal
//!   recorder machinery.
//!
//! [`Tee`] fans one hook stream into two recorders (aggregates + time
//! series in one pass) and preserves the zero-cost contract.
//!
//! ## Hook sites
//!
//! - `flowsched_algos::engine::run_immediate` — the shared streaming
//!   engine behind `eft_stream`, `dispatch_stream`, and
//!   `run_stepped_stream`: arrivals, dispatches, projected completions,
//!   machine busy/idle transitions (the engine, not the dispatcher,
//!   emits transitions — one convention for every immediate rule,
//!   including the integer stepped fast path).
//! - `flowsched_algos::engine::run_fifo` (via `fifo_stream`) — the same
//!   events with *actual* transition times from the event loop.
//! - `flowsched_sim::driver::{simulate_with, simulate_stream}` —
//!   whole-run tracing, batch or constant-memory streaming.
//! - `flowsched_solver::loadflow` (λ-probes and LP solves) and
//!   `flowsched_solver::matching::BipartiteMatcher::solve_recorded` —
//!   solver probe events with iteration counts.
//!
//! ## Event-trace conventions
//!
//! Immediate-dispatch engines emit `TaskCompletion` and `MachineIdle`
//! events *projected* at dispatch time, so the trace is ordered by
//! record (dispatch) order; **per-machine** timestamps are monotone and
//! busy/idle events strictly alternate starting with busy, which
//! `tests/obs_invariants.rs` pins as an invariant. The trailing idle
//! transition after a machine's final completion is never emitted.

#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod export;
pub mod memory;
pub mod pipeline;
pub mod recorder;
pub mod shard;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod window;

pub use counters::{Counter, Counters};
pub use event::{Event, EventRing, ProbeKind};
pub use export::{
    chrome_trace, chrome_trace_full, chrome_trace_with_outages, prometheus_text,
    prometheus_text_with, windows_to_csv, ExtraGauge, PromOptions,
};
pub use memory::{MemoryRecorder, ObsConfig};
pub use pipeline::{NoopPipeline, PipelineMetrics, PipelineProbe, Stage, StageStats, StageTimer};
pub use recorder::{NoopRecorder, Recorder, Tee};
pub use shard::{merge_windows, ShardedRecorder};
pub use slo::{SloBreach, SloEnvelope, SloMonitor};
pub use snapshot::{render_summary, trace_to_json, ObsSnapshot};
pub use span::{
    breach_marks, machine_spans, outage_spans, task_spans, BreachMark, MachineSpan, OutageSpan,
    TaskSpan,
};
pub use window::{WindowConfig, WindowStats, WindowedMetrics};

/// Convenience re-exports for instrumented engines and tests.
pub mod prelude {
    pub use crate::counters::Counter;
    pub use crate::event::{Event, ProbeKind};
    pub use crate::memory::{MemoryRecorder, ObsConfig};
    pub use crate::pipeline::{NoopPipeline, PipelineMetrics, PipelineProbe, Stage, StageTimer};
    pub use crate::recorder::{NoopRecorder, Recorder, Tee};
    pub use crate::shard::ShardedRecorder;
    pub use crate::slo::{SloEnvelope, SloMonitor};
    pub use crate::window::{WindowConfig, WindowedMetrics};
}
