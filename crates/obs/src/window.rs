//! Tumbling-window time-series metrics.
//!
//! The aggregate recorders answer "how did the run end up?"; this module
//! answers "when did it happen?". [`WindowedMetrics`] is a [`Recorder`]
//! that folds the hook stream into tumbling windows of width
//! [`WindowConfig::width`]: per-window arrival / start / completion
//! counts, time-averaged queue depth, per-machine utilization, and a
//! small per-window flow histogram for windowed percentiles.
//!
//! Memory is `O(#windows × (#machines + flow_bins))` and completely
//! independent of the task count, so a million-task stream with windowed
//! telemetry stays inside the `tests/streaming_memory.rs` RSS bound. The
//! window bank grows on demand (amortized, geometric — the only
//! allocation recording ever does) and is hard-capped at
//! [`WindowConfig::max_windows`]; past the cap the final window absorbs
//! the remainder of time, so a pathological makespan degrades resolution
//! instead of memory.
//!
//! Everything is derived from `task_dispatch` alone (plus `task_arrival`
//! for arrival counts): immediate-dispatch engines project completions
//! at dispatch time, so the span `[start, start + ptime)` is attributed
//! to busy time and `[release, start)` to queueing the moment the task
//! is placed — out-of-order window writes are fine because windows are
//! indexed by time, not visit order. `machine_busy`/`machine_idle`
//! transitions and solver probes are intentionally ignored; they carry
//! no information the dispatch span does not.

use flowsched_stats::histogram::Histogram;

use crate::counters::Counter;
use crate::event::ProbeKind;
use crate::recorder::Recorder;

/// Construction parameters for [`WindowedMetrics`].
#[derive(Debug, Clone)]
pub struct WindowConfig {
    /// Machines the run uses (sizes each window's busy-time bank).
    pub machines: usize,
    /// Tumbling-window width in engine time units.
    pub width: f64,
    /// Per-window flow histogram lower edge.
    pub flow_lo: f64,
    /// Per-window flow histogram upper edge.
    pub flow_hi: f64,
    /// Per-window flow histogram bin count (kept small — windows are
    /// many, so each histogram should be cheap).
    pub flow_bins: usize,
    /// Hard cap on the number of windows; the last window covers
    /// `[(max_windows − 1) × width, ∞)` so late events degrade
    /// resolution, never memory.
    pub max_windows: usize,
}

impl WindowConfig {
    /// Sensible defaults: 32 flow bins over `[0, 64)`, 65 536 windows.
    pub fn defaults(machines: usize, width: f64) -> Self {
        WindowConfig {
            machines,
            width,
            flow_lo: 0.0,
            flow_hi: 64.0,
            flow_bins: 32,
            max_windows: 1 << 16,
        }
    }
}

/// Aggregates for one tumbling window `[k·width, (k+1)·width)`.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Tasks released in the window.
    pub arrivals: u64,
    /// Tasks whose service started in the window.
    pub starts: u64,
    /// Tasks whose (projected) completion falls in the window.
    pub completions: u64,
    /// Task-time spent waiting (released but not yet started) inside the
    /// window; divide by the width for the time-averaged queue depth.
    pub queue_time: f64,
    /// Busy time accumulated inside the window, per machine.
    pub busy: Vec<f64>,
    /// Flow times of the completions that fell in this window.
    pub flow_hist: Histogram,
}

impl WindowStats {
    fn new(cfg: &WindowConfig) -> Self {
        WindowStats {
            arrivals: 0,
            starts: 0,
            completions: 0,
            queue_time: 0.0,
            busy: vec![0.0; cfg.machines],
            flow_hist: Histogram::new(cfg.flow_lo, cfg.flow_hi, cfg.flow_bins),
        }
    }

    /// Time-averaged number of waiting tasks over the window.
    pub fn mean_queue_depth(&self, width: f64) -> f64 {
        self.queue_time / width
    }

    /// Per-machine busy fraction of the window.
    pub fn utilization(&self, width: f64) -> Vec<f64> {
        self.busy.iter().map(|&b| b / width).collect()
    }

    /// Busy fraction averaged over machines.
    pub fn mean_utilization(&self, width: f64) -> f64 {
        if self.busy.is_empty() {
            return 0.0;
        }
        self.busy.iter().sum::<f64>() / (width * self.busy.len() as f64)
    }

    fn merge(&mut self, other: &WindowStats) {
        self.arrivals += other.arrivals;
        self.starts += other.starts;
        self.completions += other.completions;
        self.queue_time += other.queue_time;
        for (b, o) in self.busy.iter_mut().zip(&other.busy) {
            *b += o;
        }
        self.flow_hist.merge(&other.flow_hist);
    }
}

/// The tumbling-window time-series recorder (see the module docs).
///
/// Windows are created lazily up to the highest timestamp seen, so
/// [`WindowedMetrics::windows`] always covers `[0, windows·width)` with
/// no holes.
#[derive(Debug, Clone)]
pub struct WindowedMetrics {
    cfg: WindowConfig,
    windows: Vec<WindowStats>,
}

impl WindowedMetrics {
    /// Builds an empty time series.
    ///
    /// # Panics
    /// Panics unless the width is positive and finite and
    /// `max_windows ≥ 1`.
    pub fn new(cfg: WindowConfig) -> Self {
        assert!(
            cfg.width.is_finite() && cfg.width > 0.0,
            "window width must be positive"
        );
        assert!(cfg.max_windows >= 1, "need at least one window");
        WindowedMetrics {
            cfg,
            windows: Vec::new(),
        }
    }

    /// The configuration this series was built with.
    pub fn config(&self) -> &WindowConfig {
        &self.cfg
    }

    /// Window width in engine time units.
    pub fn width(&self) -> f64 {
        self.cfg.width
    }

    /// The windows materialized so far (index `k` covers
    /// `[k·width, (k+1)·width)`).
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// Which window a timestamp falls in (clamped to the cap).
    pub fn index_of(&self, t: f64) -> usize {
        ((t.max(0.0) / self.cfg.width) as usize).min(self.cfg.max_windows - 1)
    }

    /// Folds another series into this one window-by-window.
    ///
    /// # Panics
    /// Panics when the two series disagree on width, machine count, or
    /// flow-histogram shape.
    pub fn merge(&mut self, other: &WindowedMetrics) {
        assert_eq!(
            (self.cfg.width.to_bits(), self.cfg.machines),
            (other.cfg.width.to_bits(), other.cfg.machines),
            "windowed merge requires identical width and machine count"
        );
        while self.windows.len() < other.windows.len() {
            self.windows.push(WindowStats::new(&self.cfg));
        }
        for (w, o) in self.windows.iter_mut().zip(&other.windows) {
            w.merge(o);
        }
    }

    fn at(&mut self, t: f64) -> &mut WindowStats {
        let k = self.index_of(t);
        while self.windows.len() <= k {
            self.windows.push(WindowStats::new(&self.cfg));
        }
        &mut self.windows[k]
    }

    /// Distributes the interval `[from, to)` over the windows it
    /// overlaps, handing each window its overlap length. The capped
    /// final window absorbs everything past the cap.
    fn spread(&mut self, from: f64, to: f64, mut f: impl FnMut(&mut WindowStats, f64)) {
        // `partial_cmp` so NaN endpoints bail out instead of looping.
        if to.partial_cmp(&from) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        let width = self.cfg.width;
        let last = self.cfg.max_windows - 1;
        let mut k = self.index_of(from);
        loop {
            let win_start = k as f64 * width;
            let win_end = if k == last {
                f64::INFINITY
            } else {
                win_start + width
            };
            let overlap = to.min(win_end) - from.max(win_start);
            if overlap > 0.0 {
                self.at(win_start.max(from)); // materialize window k
                f(&mut self.windows[k], overlap);
            }
            if to <= win_end || k == last {
                break;
            }
            k += 1;
        }
    }
}

impl Recorder for WindowedMetrics {
    #[inline]
    fn task_arrival(&mut self, _task: u64, at: f64) {
        self.at(at).arrivals += 1;
    }

    fn task_dispatch(&mut self, _task: u64, machine: u32, release: f64, start: f64, ptime: f64) {
        let completion = start + ptime;
        let flow = completion - release;
        self.at(start).starts += 1;
        {
            let w = self.at(completion);
            w.completions += 1;
            w.flow_hist.record(flow);
        }
        self.spread(release, start, |w, dt| w.queue_time += dt);
        let m = machine as usize;
        self.spread(start, completion, |w, dt| {
            if let Some(b) = w.busy.get_mut(m) {
                *b += dt;
            }
        });
    }

    #[inline]
    fn machine_busy(&mut self, _machine: u32, _at: f64) {}

    #[inline]
    fn machine_idle(&mut self, _machine: u32, _at: f64) {}

    #[inline]
    fn probe(&mut self, _kind: ProbeKind, _iterations: u64, _value: f64) {}

    #[inline]
    fn add(&mut self, _c: Counter, _delta: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(width: f64) -> WindowedMetrics {
        WindowedMetrics::new(WindowConfig::defaults(2, width))
    }

    #[test]
    fn dispatch_splits_busy_time_across_windows() {
        let mut w = series(1.0);
        // Service [0.5, 2.5) on machine 0: 0.5 in window 0, 1.0 in
        // window 1, 0.5 in window 2.
        w.task_dispatch(0, 0, 0.5, 0.5, 2.0);
        assert_eq!(w.windows().len(), 3);
        assert_eq!(w.windows()[0].busy, vec![0.5, 0.0]);
        assert_eq!(w.windows()[1].busy, vec![1.0, 0.0]);
        assert_eq!(w.windows()[2].busy, vec![0.5, 0.0]);
        assert_eq!(w.windows()[0].starts, 1);
        assert_eq!(w.windows()[2].completions, 1);
        assert_eq!(w.windows()[2].flow_hist.total(), 1);
    }

    #[test]
    fn waiting_time_lands_in_queue_depth() {
        let mut w = series(1.0);
        // Released at 0, starts at 2: waits through windows 0 and 1.
        w.task_arrival(0, 0.0);
        w.task_dispatch(0, 1, 0.0, 2.0, 0.5);
        assert_eq!(w.windows()[0].arrivals, 1);
        assert_eq!(w.windows()[0].mean_queue_depth(1.0), 1.0);
        assert_eq!(w.windows()[1].mean_queue_depth(1.0), 1.0);
        assert_eq!(w.windows()[2].mean_queue_depth(1.0), 0.0);
        assert_eq!(w.windows()[2].busy, vec![0.0, 0.5]);
    }

    #[test]
    fn busy_time_is_conserved_across_the_split() {
        let mut w = series(0.7);
        let jobs = [(0.0, 0.3, 2.0), (1.1, 1.5, 3.3), (2.0, 2.0, 0.1)];
        for (i, &(rel, start, p)) in jobs.iter().enumerate() {
            w.task_dispatch(i as u64, 0, rel, start, p);
        }
        let total: f64 = w.windows().iter().map(|win| win.busy[0]).sum();
        let expected: f64 = jobs.iter().map(|&(_, _, p)| p).sum();
        assert!((total - expected).abs() < 1e-9);
        let queued: f64 = w.windows().iter().map(|win| win.queue_time).sum();
        let expected_wait: f64 = jobs.iter().map(|&(r, s, _)| s - r).sum();
        assert!((queued - expected_wait).abs() < 1e-9);
    }

    #[test]
    fn capped_final_window_absorbs_late_events() {
        let mut cfg = WindowConfig::defaults(1, 1.0);
        cfg.max_windows = 4;
        let mut w = WindowedMetrics::new(cfg);
        // Service [2.0, 100.0) would need 100 windows; everything past
        // window 3 collapses into window 3.
        w.task_dispatch(0, 0, 2.0, 2.0, 98.0);
        assert_eq!(w.windows().len(), 4);
        assert_eq!(w.windows()[2].busy, vec![1.0]);
        assert!((w.windows()[3].busy[0] - 97.0).abs() < 1e-9);
        assert_eq!(w.index_of(1e12), 3);
        assert_eq!(w.windows()[3].completions, 1);
    }

    #[test]
    fn merge_equals_one_series_that_saw_every_hook() {
        let drive_a = |w: &mut WindowedMetrics| {
            w.task_arrival(0, 0.2);
            w.task_dispatch(0, 0, 0.2, 0.4, 1.7);
        };
        let drive_b = |w: &mut WindowedMetrics| {
            w.task_arrival(1, 1.0);
            w.task_dispatch(1, 1, 1.0, 2.5, 0.25);
        };
        let mut a = series(1.0);
        drive_a(&mut a);
        let mut b = series(1.0);
        drive_b(&mut b);
        a.merge(&b);

        let mut whole = series(1.0);
        drive_a(&mut whole);
        drive_b(&mut whole);

        assert_eq!(a.windows().len(), whole.windows().len());
        for (x, y) in a.windows().iter().zip(whole.windows()) {
            assert_eq!(x.arrivals, y.arrivals);
            assert_eq!(x.starts, y.starts);
            assert_eq!(x.completions, y.completions);
            assert_eq!(x.busy, y.busy);
            assert_eq!(x.queue_time, y.queue_time);
            assert_eq!(x.flow_hist.counts(), y.flow_hist.counts());
        }
    }

    #[test]
    #[should_panic(expected = "identical width")]
    fn merge_rejects_mismatched_widths() {
        let mut a = series(1.0);
        let b = series(2.0);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = series(0.0);
    }
}
