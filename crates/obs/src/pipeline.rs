//! Wall-clock pipeline instrumentation for the sharded engine.
//!
//! Everything else in this crate records *simulated* time — release,
//! start, completion timestamps the engines compute. This module records
//! *wall-clock* time: how many nanoseconds the sharded dispatch pipeline
//! (`flowsched_parallel::sharded`) actually spends in each of its
//! stages — router batch assembly, SPSC enqueue/dequeue waits, per-shard
//! worker dispatch, and the arrival-order merge — plus queue-depth
//! high-water marks and backpressure-stall counts. It exists to answer
//! ROADMAP item 1's routing-tax question with measurements instead of
//! end-to-end median subtraction.
//!
//! The probe contract mirrors [`Recorder`](crate::recorder::Recorder):
//! hot paths are generic over `P: PipelineProbe` and guard every
//! `Instant::now()` behind `P::ENABLED`, so with [`NoopPipeline`]
//! monomorphization deletes the clock reads along with the hook calls —
//! the probed engine is the unprobed engine (the `pipeline` bench gates
//! this within noise). Unlike `Recorder`, hooks take `&self` and probes
//! must be `Clone + Send + 'static`: the sharded engine consumes its
//! worker closures on other threads, so a live probe is a handle onto
//! shared atomics ([`PipelineMetrics`]), cloned once per worker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The instrumented stages of the sharded dispatch pipeline, in
/// pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Router-side batch assembly: restricting the arrival's processing
    /// set to its shard and appending the `TaskMsg` to the output batch.
    Route,
    /// Router-side blocking inside `flush` while a shard's SPSC queue is
    /// full (every span here is a backpressure stall).
    EnqueueWait,
    /// Worker-side blocking on an empty input queue (waiting for the
    /// router to produce the next batch).
    DequeueWait,
    /// Worker-side dispatch: running the shard's kernel over one batch.
    Dispatch,
    /// Router-side arrival-order merge: draining result messages into
    /// the reorder buffer and committing the ready prefix.
    Merge,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Route,
        Stage::EnqueueWait,
        Stage::DequeueWait,
        Stage::Dispatch,
        Stage::Merge,
    ];

    /// Stable snake_case identifier used in tables and exports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Route => "route",
            Stage::EnqueueWait => "enqueue_wait",
            Stage::DequeueWait => "dequeue_wait",
            Stage::Dispatch => "dispatch",
            Stage::Merge => "merge",
        }
    }

    fn index(self) -> usize {
        Stage::ALL
            .iter()
            .position(|&s| s == self)
            .expect("every stage is in ALL")
    }
}

/// Sink for wall-clock pipeline hooks.
///
/// `Clone + Send + 'static` because the sharded engine moves a clone
/// into every worker thread; implementations share state internally
/// (see [`PipelineMetrics`]) or have none (see [`NoopPipeline`]).
pub trait PipelineProbe: Clone + Send + 'static {
    /// `false` only for the no-op probe: lets hot paths skip the
    /// monotonic-clock reads entirely (`if P::ENABLED { … }` folds to
    /// nothing, same contract as `Recorder::ENABLED`).
    const ENABLED: bool = true;

    /// One timed span of `stage` took `ns` nanoseconds and covered
    /// `items` tasks (0 for pure waits).
    fn span_ns(&self, stage: Stage, ns: u64, items: u64);

    /// Observed reorder-buffer / queue depth (the probe keeps the
    /// high-water mark).
    fn queue_depth(&self, depth: u64);

    /// The router hit a full SPSC queue and had to stall.
    fn backpressure_stall(&self);

    /// The router force-flushed a partial batch because the reorder
    /// buffer crossed its high-water mark.
    fn forced_flush(&self);
}

/// The probe that probes nothing, at no cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopPipeline;

impl PipelineProbe for NoopPipeline {
    const ENABLED: bool = false;

    #[inline(always)]
    fn span_ns(&self, _stage: Stage, _ns: u64, _items: u64) {}

    #[inline(always)]
    fn queue_depth(&self, _depth: u64) {}

    #[inline(always)]
    fn backpressure_stall(&self) {}

    #[inline(always)]
    fn forced_flush(&self) {}
}

/// A started wall-clock span; [`StageTimer::stop`] records it.
///
/// With a disabled probe the constructor never reads the clock and the
/// struct is a `None` the optimizer deletes, preserving the zero-cost
/// contract at every call site without per-site `if P::ENABLED` noise.
#[derive(Debug)]
pub struct StageTimer {
    start: Option<Instant>,
}

impl StageTimer {
    /// Starts a span (a no-op for disabled probes).
    #[inline(always)]
    pub fn start<P: PipelineProbe>(_probe: &P) -> Self {
        StageTimer {
            start: if P::ENABLED {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Ends the span, attributing it to `stage` with an item count.
    #[inline(always)]
    pub fn stop<P: PipelineProbe>(self, probe: &P, stage: Stage, items: u64) {
        if let Some(t0) = self.start {
            probe.span_ns(stage, t0.elapsed().as_nanos() as u64, items);
        }
    }
}

/// Number of log₂ duration buckets per stage (covers the full `u64`
/// nanosecond range: bucket `b` holds spans with `⌊log₂ ns⌋ = b`).
pub const NS_BUCKETS: usize = 64;

#[derive(Debug)]
struct StageAtomics {
    spans: AtomicU64,
    total_ns: AtomicU64,
    total_items: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; NS_BUCKETS],
}

impl StageAtomics {
    fn new() -> Self {
        StageAtomics {
            spans: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            total_items: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Which log₂ bucket a nanosecond duration falls in.
#[inline]
fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

#[derive(Debug)]
struct MetricsInner {
    stages: [StageAtomics; Stage::ALL.len()],
    depth_high_water: AtomicU64,
    stalls: AtomicU64,
    forced_flushes: AtomicU64,
}

/// Frozen per-stage statistics read out of a [`PipelineMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Timed spans recorded.
    pub spans: u64,
    /// Nanoseconds summed over all spans.
    pub total_ns: u64,
    /// Items (tasks) summed over all spans.
    pub total_items: u64,
    /// Longest single span.
    pub max_ns: u64,
    /// log₂ nanosecond histogram (`buckets[b]` counts spans with
    /// `⌊log₂ ns⌋ = b`; zero-duration spans land in bucket 0).
    pub buckets: Vec<u64>,
}

impl StageStats {
    /// Mean nanoseconds per span (0 when nothing was recorded).
    pub fn ns_per_span(&self) -> f64 {
        if self.spans == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.spans as f64
        }
    }

    /// Mean nanoseconds per item — the per-task cost of this stage
    /// (0 when the stage carried no items, e.g. pure waits).
    pub fn ns_per_item(&self) -> f64 {
        if self.total_items == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.total_items as f64
        }
    }
}

/// The live pipeline probe: a cheap cloneable handle onto a shared bank
/// of atomics, safe to hammer from the router and every worker thread
/// concurrently. All updates are `Relaxed` — stages are independent
/// monotone counters and the readers only run after the pipeline joins.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    inner: Arc<MetricsInner>,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        PipelineMetrics::new()
    }
}

impl PipelineMetrics {
    /// A fresh all-zero metrics bank.
    pub fn new() -> Self {
        PipelineMetrics {
            inner: Arc::new(MetricsInner {
                stages: std::array::from_fn(|_| StageAtomics::new()),
                depth_high_water: AtomicU64::new(0),
                stalls: AtomicU64::new(0),
                forced_flushes: AtomicU64::new(0),
            }),
        }
    }

    /// Frozen statistics for one stage.
    pub fn stage(&self, stage: Stage) -> StageStats {
        let s = &self.inner.stages[stage.index()];
        StageStats {
            spans: s.spans.load(Ordering::Relaxed),
            total_ns: s.total_ns.load(Ordering::Relaxed),
            total_items: s.total_items.load(Ordering::Relaxed),
            max_ns: s.max_ns.load(Ordering::Relaxed),
            buckets: s
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Highest queue/reorder-buffer depth observed.
    pub fn depth_high_water(&self) -> u64 {
        self.inner.depth_high_water.load(Ordering::Relaxed)
    }

    /// Backpressure stalls (router blocked on a full SPSC queue).
    pub fn stalls(&self) -> u64 {
        self.inner.stalls.load(Ordering::Relaxed)
    }

    /// Forced partial-batch flushes (reorder buffer crossed high water).
    pub fn forced_flushes(&self) -> u64 {
        self.inner.forced_flushes.load(Ordering::Relaxed)
    }

    /// Renders the per-stage breakdown table the `pipeline_profile` bin
    /// prints: one row per stage with span count, total milliseconds,
    /// mean ns/span, mean ns/item, and the max span — the ns/item column
    /// is the per-task routing tax of that stage.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<14} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
            "stage", "spans", "total_ms", "ns/span", "ns/task", "max_ns"
        ));
        for stage in Stage::ALL {
            let s = self.stage(stage);
            out.push_str(&format!(
                "  {:<14} {:>10} {:>12.3} {:>12.1} {:>12.1} {:>12}\n",
                stage.name(),
                s.spans,
                s.total_ns as f64 / 1e6,
                s.ns_per_span(),
                s.ns_per_item(),
                s.max_ns
            ));
        }
        out.push_str(&format!(
            "  queue_depth_high_water={} backpressure_stalls={} forced_flushes={}\n",
            self.depth_high_water(),
            self.stalls(),
            self.forced_flushes()
        ));
        out
    }
}

impl PipelineProbe for PipelineMetrics {
    #[inline]
    fn span_ns(&self, stage: Stage, ns: u64, items: u64) {
        let s = &self.inner.stages[stage.index()];
        s.spans.fetch_add(1, Ordering::Relaxed);
        s.total_ns.fetch_add(ns, Ordering::Relaxed);
        s.total_items.fetch_add(items, Ordering::Relaxed);
        s.max_ns.fetch_max(ns, Ordering::Relaxed);
        s.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn queue_depth(&self, depth: u64) {
        self.inner
            .depth_high_water
            .fetch_max(depth, Ordering::Relaxed);
    }

    #[inline]
    fn backpressure_stall(&self) {
        self.inner.stalls.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn forced_flush(&self) {
        self.inner.forced_flushes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_of<P: PipelineProbe>(_p: &P) -> bool {
        P::ENABLED
    }

    #[test]
    fn noop_is_disabled_and_timer_skips_the_clock() {
        assert!(!enabled_of(&NoopPipeline));
        let t = StageTimer::start(&NoopPipeline);
        assert!(t.start.is_none(), "disabled probe must not read the clock");
        t.stop(&NoopPipeline, Stage::Route, 10);
    }

    #[test]
    fn spans_accumulate_per_stage() {
        let m = PipelineMetrics::new();
        m.span_ns(Stage::Dispatch, 100, 4);
        m.span_ns(Stage::Dispatch, 300, 12);
        m.span_ns(Stage::Merge, 50, 16);
        let d = m.stage(Stage::Dispatch);
        assert_eq!(d.spans, 2);
        assert_eq!(d.total_ns, 400);
        assert_eq!(d.total_items, 16);
        assert_eq!(d.max_ns, 300);
        assert_eq!(d.ns_per_span(), 200.0);
        assert_eq!(d.ns_per_item(), 25.0);
        assert_eq!(m.stage(Stage::Merge).total_items, 16);
        assert_eq!(m.stage(Stage::Route).spans, 0);
        assert_eq!(m.stage(Stage::Route).ns_per_item(), 0.0);
    }

    #[test]
    fn log2_buckets_place_durations_correctly() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        let m = PipelineMetrics::new();
        m.span_ns(Stage::Route, 1000, 1);
        let s = m.stage(Stage::Route);
        assert_eq!(s.buckets[9], 1, "1000 ns is in bucket ⌊log₂ 1000⌋ = 9");
        assert_eq!(s.buckets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn gauges_keep_high_water_and_counts() {
        let m = PipelineMetrics::new();
        m.queue_depth(3);
        m.queue_depth(9);
        m.queue_depth(5);
        m.backpressure_stall();
        m.forced_flush();
        m.forced_flush();
        assert_eq!(m.depth_high_water(), 9);
        assert_eq!(m.stalls(), 1);
        assert_eq!(m.forced_flushes(), 2);
    }

    #[test]
    fn clones_share_the_same_bank_across_threads() {
        let m = PipelineMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.span_ns(Stage::Dispatch, 7, 1);
                    }
                });
            }
        });
        let d = m.stage(Stage::Dispatch);
        assert_eq!(d.spans, 4000);
        assert_eq!(d.total_ns, 28000);
    }

    #[test]
    fn table_lists_every_stage() {
        let m = PipelineMetrics::new();
        m.span_ns(Stage::EnqueueWait, 42, 0);
        let t = m.render_table();
        for stage in Stage::ALL {
            assert!(
                t.contains(stage.name()),
                "table is missing {}",
                stage.name()
            );
        }
        assert!(t.contains("backpressure_stalls=0"));
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }

    #[test]
    fn live_timer_records_a_span() {
        let m = PipelineMetrics::new();
        let t = StageTimer::start(&m);
        std::hint::black_box(0u64);
        t.stop(&m, Stage::Route, 3);
        let s = m.stage(Stage::Route);
        assert_eq!(s.spans, 1);
        assert_eq!(s.total_items, 3);
    }
}
