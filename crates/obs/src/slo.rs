//! Live SLO monitoring against the paper's competitive-ratio envelopes.
//!
//! The paper gives exact online targets: EFT is `3 − 2/k`-competitive
//! for disjoint processing sets of size `k` (Corollary 1), and interval
//! processing sets admit an `m − k + 1` adversary lower bound
//! (Theorem 8), so a live run whose max-flow ratio crosses those
//! envelopes is either off-model or mis-configured. [`SloMonitor`] is a
//! [`Recorder`] that rides along any instrumented run (typically one
//! half of a [`Tee`](crate::recorder::Tee)), folds the dispatch stream
//! into [`WindowedMetrics`] tumbling windows, tracks the per-window
//! observed `Fmax` and a running OPT proxy, and flags every window whose
//! `Fmax / OPT-proxy` ratio crosses the configured [`SloEnvelope`].
//!
//! The default OPT proxy is the largest processing time seen so far: any
//! schedule's max flow is at least its largest `ptime` (a task's flow is
//! at least its service time), so the proxy is a certified lower bound
//! on OPT and the reported ratio an *upper* bound on the true
//! competitive ratio — breaches may be conservative false alarms, never
//! silent misses relative to the proxy. When the exact offline optimum
//! is known (tests, replayed traces) [`SloMonitor::with_exact_opt`]
//! replaces the proxy.
//!
//! Breaches flow back through the ordinary recorder machinery:
//! [`SloMonitor::emit_into`] calls
//! [`Recorder::slo_breach`](crate::recorder::Recorder::slo_breach) per
//! breached window, which a [`MemoryRecorder`](crate::MemoryRecorder)
//! turns into a [`Counter::SloBreaches`](crate::Counter) bump and an
//! [`Event::SloBreach`](crate::Event) trace row — so breaches appear in
//! Chrome traces and Prometheus text alongside everything else.

use crate::counters::Counter;
use crate::event::ProbeKind;
use crate::recorder::Recorder;
use crate::window::{WindowConfig, WindowedMetrics};

/// Which theoretical envelope a monitor alarms against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloEnvelope {
    /// Corollary 1: with disjoint processing sets of size `k`, EFT is
    /// `(3 − 2/k)`-competitive — the envelope every healthy disjoint-set
    /// run must stay inside.
    DisjointSets {
        /// Common processing-set size.
        k: usize,
    },
    /// Theorem 8: with interval processing sets of size `k` over `m`
    /// machines, *no* online algorithm beats `m − k + 1`; the monitor
    /// uses it as an adversary anchor — ratios above it mean the run is
    /// doing worse than even the adversarial lower bound.
    IntervalSets {
        /// Machine count.
        m: usize,
        /// Interval length.
        k: usize,
    },
    /// A fixed custom bound (operational SLOs that are tighter or looser
    /// than the theory).
    Fixed(
        /// The ratio above which windows are flagged.
        f64,
    ),
}

impl SloEnvelope {
    /// The ratio bound this envelope flags above.
    pub fn bound(&self) -> f64 {
        match *self {
            SloEnvelope::DisjointSets { k } => 3.0 - 2.0 / k.max(1) as f64,
            SloEnvelope::IntervalSets { m, k } => (m.saturating_sub(k) + 1).max(1) as f64,
            SloEnvelope::Fixed(b) => b,
        }
    }
}

/// One breached window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloBreach {
    /// Window index in the monitor's tumbling series.
    pub window: usize,
    /// End of the breached window (the event timestamp).
    pub at: f64,
    /// Observed `Fmax / OPT-proxy` ratio in the window.
    pub ratio: f64,
    /// The envelope bound that was crossed.
    pub bound: f64,
}

/// The theory-aware SLO monitor (see the module docs).
#[derive(Debug, Clone)]
pub struct SloMonitor {
    envelope: SloEnvelope,
    metrics: WindowedMetrics,
    /// Exact max flow completed per window (same indexing as `metrics`).
    window_fmax: Vec<f64>,
    /// Running max flow over the whole run.
    fmax: f64,
    /// Running max ptime — a certified lower bound on OPT's Fmax.
    max_ptime: f64,
    exact_opt: Option<f64>,
}

impl SloMonitor {
    /// A monitor with [`WindowConfig::defaults`] windows of `width` over
    /// `machines` machines.
    pub fn new(machines: usize, width: f64, envelope: SloEnvelope) -> Self {
        SloMonitor::with_config(WindowConfig::defaults(machines, width), envelope)
    }

    /// A monitor over an explicit window configuration.
    ///
    /// # Panics
    /// Panics on the same degenerate configs [`WindowedMetrics::new`]
    /// rejects.
    pub fn with_config(cfg: WindowConfig, envelope: SloEnvelope) -> Self {
        SloMonitor {
            envelope,
            metrics: WindowedMetrics::new(cfg),
            window_fmax: Vec::new(),
            fmax: 0.0,
            max_ptime: 0.0,
            exact_opt: None,
        }
    }

    /// Replaces the running OPT proxy with a known exact optimum.
    pub fn with_exact_opt(mut self, opt: f64) -> Self {
        self.exact_opt = Some(opt);
        self
    }

    /// The envelope this monitor alarms against.
    pub fn envelope(&self) -> SloEnvelope {
        self.envelope
    }

    /// The underlying tumbling-window series.
    pub fn metrics(&self) -> &WindowedMetrics {
        &self.metrics
    }

    /// Largest flow time observed so far.
    pub fn fmax(&self) -> f64 {
        self.fmax
    }

    /// The OPT lower bound ratios divide by: the exact optimum when
    /// supplied, else the largest processing time seen.
    pub fn opt_proxy(&self) -> f64 {
        self.exact_opt.unwrap_or(self.max_ptime)
    }

    /// Whole-run `Fmax / OPT-proxy` ratio (0 before any dispatch).
    pub fn ratio(&self) -> f64 {
        let opt = self.opt_proxy();
        if opt > 0.0 {
            self.fmax / opt
        } else {
            0.0
        }
    }

    /// Per-window ratios: `(window, Fmax_window / OPT-proxy)` for every
    /// window in which at least one task completed.
    pub fn window_ratios(&self) -> Vec<(usize, f64)> {
        let opt = self.opt_proxy();
        if opt <= 0.0 {
            return Vec::new();
        }
        self.window_fmax
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0.0)
            .map(|(k, &f)| (k, f / opt))
            .collect()
    }

    /// Every window whose ratio strictly exceeds the envelope bound.
    ///
    /// Note the OPT proxy is *global* (monotone over the run) while the
    /// window `Fmax` is local, so a breach list computed mid-run can
    /// only shrink as a later, larger `ptime` raises the proxy — the
    /// final call after the run is the authoritative one.
    pub fn breaches(&self) -> Vec<SloBreach> {
        let bound = self.envelope.bound();
        let width = self.metrics.width();
        self.window_ratios()
            .into_iter()
            .filter(|&(_, ratio)| ratio > bound)
            .map(|(window, ratio)| SloBreach {
                window,
                at: (window + 1) as f64 * width,
                ratio,
                bound,
            })
            .collect()
    }

    /// Emits every breached window into `rec` via
    /// [`Recorder::slo_breach`] and returns the breach count. Call once
    /// after the run (or at checkpoint boundaries) so the breaches land
    /// in the same trace/counter machinery as the engine events.
    pub fn emit_into<R: Recorder>(&self, rec: &mut R) -> usize {
        let breaches = self.breaches();
        if R::ENABLED {
            for b in &breaches {
                rec.slo_breach(b.at, b.ratio, b.bound);
            }
        }
        breaches.len()
    }
}

impl Recorder for SloMonitor {
    #[inline]
    fn task_arrival(&mut self, task: u64, at: f64) {
        self.metrics.task_arrival(task, at);
    }

    fn task_dispatch(&mut self, task: u64, machine: u32, release: f64, start: f64, ptime: f64) {
        let completion = start + ptime;
        let flow = completion - release;
        if ptime > self.max_ptime {
            self.max_ptime = ptime;
        }
        if flow > self.fmax {
            self.fmax = flow;
        }
        let k = self.metrics.index_of(completion);
        if self.window_fmax.len() <= k {
            self.window_fmax.resize(k + 1, 0.0);
        }
        if flow > self.window_fmax[k] {
            self.window_fmax[k] = flow;
        }
        self.metrics
            .task_dispatch(task, machine, release, start, ptime);
    }

    #[inline]
    fn machine_busy(&mut self, _machine: u32, _at: f64) {}

    #[inline]
    fn machine_idle(&mut self, _machine: u32, _at: f64) {}

    #[inline]
    fn probe(&mut self, _kind: ProbeKind, _iterations: u64, _value: f64) {}

    #[inline]
    fn add(&mut self, _c: Counter, _delta: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::memory::MemoryRecorder;

    #[test]
    fn envelope_bounds_match_the_paper() {
        assert_eq!(SloEnvelope::DisjointSets { k: 1 }.bound(), 1.0);
        assert_eq!(SloEnvelope::DisjointSets { k: 2 }.bound(), 2.0);
        assert_eq!(SloEnvelope::DisjointSets { k: 4 }.bound(), 2.5);
        assert_eq!(SloEnvelope::IntervalSets { m: 6, k: 2 }.bound(), 5.0);
        assert_eq!(SloEnvelope::IntervalSets { m: 3, k: 3 }.bound(), 1.0);
        assert_eq!(SloEnvelope::Fixed(1.75).bound(), 1.75);
    }

    #[test]
    fn healthy_run_has_no_breaches() {
        let mut mon = SloMonitor::new(2, 4.0, SloEnvelope::DisjointSets { k: 2 });
        // Unit tasks dispatched immediately: every flow equals ptime, so
        // every ratio is 1.0 < 2.0.
        for i in 0..10u64 {
            let r = i as f64 * 0.5;
            mon.task_arrival(i, r);
            mon.task_dispatch(i, (i % 2) as u32, r, r, 1.0);
        }
        assert_eq!(mon.ratio(), 1.0);
        assert!(mon.breaches().is_empty());
        let mut rec = MemoryRecorder::with_defaults(2);
        assert_eq!(mon.emit_into(&mut rec), 0);
        assert_eq!(rec.counters().get(Counter::SloBreaches), 0);
    }

    #[test]
    fn queueing_past_the_envelope_is_flagged_and_emitted() {
        let mut mon = SloMonitor::new(1, 4.0, SloEnvelope::DisjointSets { k: 2 });
        // Unit ptimes (OPT proxy 1.0) but one task waits 3 units: flow
        // 4.0 → ratio 4.0 > bound 2.0, completing at t=7 (window 1).
        mon.task_dispatch(0, 0, 0.0, 0.0, 1.0);
        mon.task_dispatch(1, 0, 3.0, 6.0, 1.0);
        assert_eq!(mon.fmax(), 4.0);
        assert_eq!(mon.opt_proxy(), 1.0);
        let breaches = mon.breaches();
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].window, 1);
        assert_eq!(breaches[0].at, 8.0);
        assert_eq!(breaches[0].ratio, 4.0);
        assert_eq!(breaches[0].bound, 2.0);

        let mut rec = MemoryRecorder::with_defaults(1);
        assert_eq!(mon.emit_into(&mut rec), 1);
        assert_eq!(rec.counters().get(Counter::SloBreaches), 1);
        assert_eq!(
            rec.trace().to_vec(),
            vec![Event::SloBreach {
                at: 8.0,
                ratio: 4.0,
                bound: 2.0
            }]
        );
    }

    #[test]
    fn exact_opt_overrides_the_proxy() {
        let mut mon = SloMonitor::new(1, 4.0, SloEnvelope::Fixed(3.0)).with_exact_opt(2.0);
        mon.task_dispatch(0, 0, 0.0, 0.0, 1.0);
        mon.task_dispatch(1, 0, 0.0, 5.0, 1.0);
        // Fmax 6.0 over exact OPT 2.0 → ratio 3.0, not 6.0.
        assert_eq!(mon.ratio(), 3.0);
        assert!(mon.breaches().is_empty(), "3.0 is not strictly above 3.0");
    }

    #[test]
    fn empty_monitor_reports_zero_ratio() {
        let mon = SloMonitor::new(2, 1.0, SloEnvelope::DisjointSets { k: 3 });
        assert_eq!(mon.ratio(), 0.0);
        assert!(mon.window_ratios().is_empty());
        assert!(mon.breaches().is_empty());
    }

    #[test]
    fn later_larger_ptime_raises_the_proxy_and_clears_false_alarms() {
        let mut mon = SloMonitor::new(1, 4.0, SloEnvelope::Fixed(2.0));
        mon.task_dispatch(0, 0, 0.0, 2.5, 1.0); // flow 3.5, proxy 1.0 → ratio 3.5
        assert_eq!(mon.breaches().len(), 1);
        mon.task_dispatch(1, 0, 3.5, 3.5, 4.0); // proxy jumps to 4.0
        assert!(mon.breaches().is_empty(), "proxy growth absolves window 0");
    }
}
