//! Time-stepped fast path for synchronous unit-task workloads.
//!
//! The adversary streams of Theorems 8–10 (and the saturated regimes of
//! Figure 11) release batches of unit tasks at integer times. For those,
//! the general event-driven EFT state is overkill: machine completions
//! are always `t + w` for an integer backlog `w`, so the whole simulation
//! can run on a vector of integers — no floats, no per-task `Assignment`
//! allocation. This module implements that fast path and the tests pin
//! it to the exact behaviour of [`EftState`](flowsched_algos::eft::EftState);
//! the Criterion bench
//! `simulation_stepped` measures the speedup (DESIGN.md ablation 3).

use flowsched_algos::tiebreak::{Breaker, TieBreak};
use flowsched_core::procset::ProcSet;
use flowsched_obs::{NoopRecorder, Recorder};

/// Outcome of a stepped run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteppedOutcome {
    /// Maximum flow time over all tasks (unit tasks → integer flows).
    pub fmax: u64,
    /// Backlog profile after the last step (`w` at time `steps`).
    pub final_profile: Vec<u64>,
    /// Total tasks dispatched.
    pub tasks: usize,
}

/// Runs EFT over `steps` synchronized batches. `batch(t)` yields the
/// processing sets of the unit tasks released at integer time `t`, in
/// release order.
///
/// # Panics
/// Panics if a batch contains an empty processing set.
pub fn run_stepped<F>(
    m: usize,
    steps: usize,
    policy: TieBreak,
    batch: F,
) -> SteppedOutcome
where
    F: FnMut(usize) -> Vec<ProcSet>,
{
    run_stepped_recorded(m, steps, policy, batch, &mut NoopRecorder)
}

/// [`run_stepped`] with instrumentation: `rec` sees each unit task's
/// arrival and dispatch (with its projected integer start time), so the
/// flow histogram and counters cover the fast path too. Machine busy /
/// idle transitions are *not* emitted here — the integer-backlog state
/// does not retain when a drained machine last completed, and tracking
/// that would defeat the point of the fast path. With [`NoopRecorder`]
/// this is exactly [`run_stepped`].
///
/// # Panics
/// Panics if a batch contains an empty processing set.
pub fn run_stepped_recorded<F, R>(
    m: usize,
    steps: usize,
    policy: TieBreak,
    mut batch: F,
    rec: &mut R,
) -> SteppedOutcome
where
    F: FnMut(usize) -> Vec<ProcSet>,
    R: Recorder,
{
    assert!(m > 0, "need at least one machine");
    let mut breaker: Breaker = policy.breaker();
    // backlog[j] = completion_time(j) − t, always ≥ 0 at batch start.
    let mut backlog = vec![0u64; m];
    let mut fmax = 0u64;
    let mut tasks = 0usize;
    let mut ties: Vec<usize> = Vec::with_capacity(m);

    for _t in 0..steps {
        for set in batch(_t) {
            assert!(!set.is_empty(), "task has an empty processing set");
            let min_backlog = set
                .as_slice()
                .iter()
                .map(|&j| backlog[j])
                .min()
                .expect("non-empty set");
            ties.clear();
            for &j in set.as_slice() {
                if backlog[j] <= min_backlog {
                    ties.push(j);
                }
            }
            let u = breaker.pick(&ties);
            if R::ENABLED {
                // The task starts once the machine's current backlog
                // drains: start = t + w, completion = start + 1,
                // flow = w + 1 (the post-increment backlog).
                let now = _t as f64;
                rec.task_arrival(tasks as u64, now);
                rec.task_dispatch(tasks as u64, u as u32, now, now + backlog[u] as f64, 1.0);
            }
            backlog[u] += 1;
            fmax = fmax.max(backlog[u]);
            tasks += 1;
        }
        // Advance one time unit: every machine works off one unit.
        for w in backlog.iter_mut() {
            *w = w.saturating_sub(1);
        }
    }

    SteppedOutcome { fmax, final_profile: backlog, tasks }
}

/// Convenience: runs the Theorem 8 adversary stream on the fast path.
pub fn run_stepped_interval_adversary(
    m: usize,
    k: usize,
    rounds: usize,
    policy: TieBreak,
) -> SteppedOutcome {
    let types = flowsched_workloads::adversary::interval::round_types(m, k);
    let sets: Vec<ProcSet> = types
        .iter()
        .map(|&lambda| ProcSet::interval(lambda - 1, lambda + k - 2))
        .collect();
    run_stepped(m, rounds, policy, |_| sets.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::EftState;
    use flowsched_workloads::adversary::interval::run_interval_adversary;

    #[test]
    fn matches_event_driven_eft_on_the_adversary() {
        for (m, k) in [(6usize, 3usize), (8, 2), (10, 4)] {
            for tb in [TieBreak::Min, TieBreak::Max] {
                let rounds = m * m;
                let stepped = run_stepped_interval_adversary(m, k, rounds, tb);
                let mut algo = EftState::new(m, tb);
                let event = run_interval_adversary(&mut algo, k, rounds);
                assert_eq!(
                    stepped.fmax as f64,
                    event.fmax(),
                    "m={m} k={k} {tb}: stepped vs event-driven"
                );
                assert_eq!(stepped.tasks, event.instance.len());
            }
        }
    }

    #[test]
    fn matches_rand_policy_with_same_seed() {
        // Identical tie sets → identical RNG consumption → identical runs.
        let (m, k, rounds) = (6, 3, 80);
        let tb = TieBreak::Rand { seed: 17 };
        let stepped = run_stepped_interval_adversary(m, k, rounds, tb);
        let mut algo = EftState::new(m, tb);
        let event = run_interval_adversary(&mut algo, k, rounds);
        assert_eq!(stepped.fmax as f64, event.fmax());
    }

    #[test]
    fn final_profile_matches_backlog() {
        let (m, k, rounds) = (6, 3, 40);
        let stepped = run_stepped_interval_adversary(m, k, rounds, TieBreak::Min);
        let mut algo = EftState::new(m, TieBreak::Min);
        let event = run_interval_adversary(&mut algo, k, rounds);
        let event_profile = flowsched_core::profile::profile_at(
            &event.schedule,
            &event.instance,
            rounds as f64,
        );
        let stepped_profile: Vec<f64> =
            stepped.final_profile.iter().map(|&w| w as f64).collect();
        assert_eq!(stepped_profile, event_profile);
    }

    #[test]
    fn empty_batches_are_fine() {
        let out = run_stepped(4, 10, TieBreak::Min, |_| Vec::new());
        assert_eq!(out.fmax, 0);
        assert_eq!(out.tasks, 0);
        assert_eq!(out.final_profile, vec![0; 4]);
    }

    #[test]
    fn overload_accumulates_backlog() {
        // Two tasks per step on one machine: backlog grows by 1 per step.
        let out = run_stepped(1, 10, TieBreak::Min, |_| {
            vec![ProcSet::full(1), ProcSet::full(1)]
        });
        assert_eq!(out.fmax, 11); // 10 steps → backlog reaches 11 at dispatch
        assert_eq!(out.final_profile, vec![10]);
    }

    #[test]
    #[should_panic(expected = "empty processing set")]
    fn empty_set_rejected() {
        let _ = run_stepped(2, 1, TieBreak::Min, |_| vec![ProcSet::empty()]);
    }

    #[test]
    fn recorded_stepped_matches_plain_and_fills_histogram() {
        use flowsched_obs::{Counter, MemoryRecorder};
        let (m, k, rounds) = (6, 3, 40);
        let types = flowsched_workloads::adversary::interval::round_types(m, k);
        let sets: Vec<ProcSet> = types
            .iter()
            .map(|&lambda| ProcSet::interval(lambda - 1, lambda + k - 2))
            .collect();
        let plain = run_stepped(m, rounds, TieBreak::Min, |_| sets.clone());
        let mut rec = MemoryRecorder::with_defaults(m);
        let recorded = run_stepped_recorded(
            m,
            rounds,
            TieBreak::Min,
            |_| sets.clone(),
            &mut rec,
        );
        assert_eq!(plain, recorded);
        let n = plain.tasks as u64;
        assert_eq!(rec.counters().get(Counter::TasksArrived), n);
        assert_eq!(rec.counters().get(Counter::TasksDispatched), n);
        assert_eq!(rec.counters().get(Counter::TasksCompleted), n);
        // Every unit flow lands in the histogram; the max observed flow is
        // exactly the stepped fmax.
        assert_eq!(rec.flow_histogram().total(), n);
        // The fast path never emits machine transitions (module docs).
        assert_eq!(rec.counters().get(Counter::MachineBusyTransitions), 0);
        assert_eq!(rec.counters().get(Counter::MachineIdleTransitions), 0);
    }
}
