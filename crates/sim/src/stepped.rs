//! Time-stepped fast path for synchronous unit-task workloads.
//!
//! The adversary streams of Theorems 8–10 (and the saturated regimes of
//! Figure 11) release batches of unit tasks at integer times. For those,
//! the general float-valued EFT state is overkill: machine completions
//! are always integers, so the dispatch rule can run entirely on a
//! vector of `u64`s. This module keeps that integer kernel
//! ([`SteppedEftState`]) but re-expresses the *loop* as a specialization
//! of the shared streaming engine
//! ([`flowsched_algos::engine::run_immediate`]): batches become an
//! [`ArrivalStream`] holding one round at a time, the outcome is a
//! [`DispatchSink`] fold, and — because the engine owns the trace — the
//! fast path now emits the same busy/idle transition convention as
//! every other immediate-dispatch run (pinned by
//! `tests/obs_invariants.rs`).
//!
//! The integer state mirrors [`EftState`](flowsched_algos::eft::EftState)
//! decision for decision (Equation (2) on `u64`s), so tie sets — and
//! therefore RNG consumption under `TieBreak::Rand` — are identical and
//! the tests pin stepped runs to the event-driven engine exactly. The
//! Criterion bench `simulation_stepped` measures the speedup (DESIGN.md
//! ablation 3).

use flowsched_algos::eft::ImmediateDispatcher;
use flowsched_algos::engine::{run_immediate, DispatchSink};
use flowsched_algos::tiebreak::{Breaker, TieBreak};
use flowsched_core::compact::ProcSetRef;
use flowsched_core::machine::MachineId;
use flowsched_core::procset::ProcSet;
use flowsched_core::schedule::Assignment;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;
use flowsched_core::time::Time;
use flowsched_obs::{NoopRecorder, Recorder};

/// Outcome of a stepped run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteppedOutcome {
    /// Maximum flow time over all tasks (unit tasks → integer flows).
    pub fmax: u64,
    /// Backlog profile after the last step (`w` at time `steps`).
    pub final_profile: Vec<u64>,
    /// Total tasks dispatched.
    pub tasks: usize,
}

/// EFT dispatch state on integer time: absolute per-machine completion
/// times as `u64`s. Implements [`ImmediateDispatcher`] so the shared
/// engine (and the paper's adaptive adversaries) can drive it; tasks
/// must be unit-length with integer releases.
///
/// Equation (2) on integers: `t'min = max(rᵢ, min_{j∈Mᵢ} C_j)`, tie set
/// `{j ∈ Mᵢ : C_j ≤ t'min}` — the same comparisons `EftState` makes on
/// floats, so the two states pick identical machines (and consume
/// identical tie-break randomness) on any integer unit-task stream.
#[derive(Debug)]
pub struct SteppedEftState {
    completions: Vec<u64>,
    /// Float mirror of `completions`, updated once per dispatch, so the
    /// `ImmediateDispatcher::machine_completions` contract (what an
    /// adaptive adversary may observe) is served without conversion.
    completions_f: Vec<Time>,
    breaker: Breaker,
    ties: Vec<usize>,
}

impl SteppedEftState {
    /// Fresh state for `m` idle machines.
    pub fn new(m: usize, policy: TieBreak) -> Self {
        assert!(m > 0, "need at least one machine");
        SteppedEftState {
            completions: vec![0; m],
            completions_f: vec![0.0; m],
            breaker: policy.breaker(),
            ties: Vec::with_capacity(m),
        }
    }

    /// Current integer completion time of each machine.
    pub fn completions(&self) -> &[u64] {
        &self.completions
    }

    /// Remaining backlog `max(0, C_j − t)` per machine at integer time
    /// `t`.
    pub fn backlog_at(&self, t: u64) -> Vec<u64> {
        self.completions
            .iter()
            .map(|&c| c.saturating_sub(t))
            .collect()
    }
}

impl ImmediateDispatcher for SteppedEftState {
    fn machine_count(&self) -> usize {
        self.completions.len()
    }

    fn dispatch_task(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        assert!(!set.is_empty(), "task has an empty processing set");
        debug_assert_eq!(task.ptime, 1.0, "stepped fast path is unit-task only");
        let r = task.release as u64;
        debug_assert_eq!(r as f64, task.release, "stepped releases must be integers");
        // Fused single-pass tie scan, the integer analog of the scalar
        // EFT scan: run an argmin until some machine is free at or before
        // the release, then collect exactly the released machines. Both
        // modes end with `ties = {j : C_j ≤ max(r, min C)}` in ascending
        // order, matching Equation (2).
        self.ties.clear();
        let mut released = false;
        let mut min_c = u64::MAX;
        for j in set.iter() {
            let c = self.completions[j];
            if released {
                if c <= r {
                    self.ties.push(j);
                }
            } else if c <= r {
                released = true;
                self.ties.clear();
                self.ties.push(j);
            } else if c < min_c {
                min_c = c;
                self.ties.clear();
                self.ties.push(j);
            } else if c == min_c {
                self.ties.push(j);
            }
        }
        let u = self.breaker.pick(&self.ties);
        let start = r.max(self.completions[u]);
        self.completions[u] = start + 1;
        self.completions_f[u] = self.completions[u] as f64;
        Assignment::new(MachineId(u), start as f64)
    }

    fn machine_completions(&self) -> &[Time] {
        &self.completions_f
    }
}

/// Adapts a `batch(t)` closure into an [`ArrivalStream`]: at each
/// integer step `t < steps` it materializes one round of processing
/// sets and lends them out as unit tasks released at `t`. Only the
/// current round is ever held, so an arbitrarily long run needs memory
/// for one batch.
struct BatchStream<F> {
    m: usize,
    steps: usize,
    t: usize,
    batch: F,
    round: Vec<ProcSet>,
    i: usize,
}

impl<F: FnMut(usize) -> Vec<ProcSet>> ArrivalStream for BatchStream<F> {
    fn machines(&self) -> usize {
        self.m
    }

    fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
        while self.i >= self.round.len() {
            if self.t >= self.steps {
                return None;
            }
            self.round = (self.batch)(self.t);
            self.i = 0;
            self.t += 1;
        }
        let set = self.round[self.i].compact_view();
        self.i += 1;
        Some((Task::unit((self.t - 1) as f64), set))
    }
}

/// The fold producing [`SteppedOutcome`]'s flow statistics: unit flows
/// are `start + 1 − release` on integers.
#[derive(Debug, Default)]
struct SteppedFold {
    fmax: u64,
    tasks: usize,
}

impl DispatchSink for SteppedFold {
    fn accept(&mut self, _seq: u64, task: Task, assignment: Assignment) {
        let flow = (assignment.start - task.release) as u64 + 1;
        self.fmax = self.fmax.max(flow);
        self.tasks += 1;
    }
}

/// Runs EFT over `steps` synchronized batches. `batch(t)` yields the
/// processing sets of the unit tasks released at integer time `t`, in
/// release order.
///
/// # Panics
/// Panics if a batch contains an empty processing set.
pub fn run_stepped<F>(m: usize, steps: usize, policy: TieBreak, batch: F) -> SteppedOutcome
where
    F: FnMut(usize) -> Vec<ProcSet>,
{
    run_stepped_stream(m, steps, policy, batch, &mut NoopRecorder)
}

/// [`run_stepped`] driven through the shared streaming engine with
/// instrumentation — the canonical recorder-generic entry point. `rec`
/// sees each unit task's arrival, dispatch (with its integer start
/// time), *and* the machine busy/idle transitions, under the same
/// convention as every other immediate-dispatch engine run (busy/idle
/// strictly alternate per machine starting with busy; the idle at a
/// previous completion is emitted lazily; the trailing idle never).
/// With [`NoopRecorder`] this is exactly [`run_stepped`].
///
/// # Panics
/// Panics if a batch contains an empty processing set.
pub fn run_stepped_stream<F, R>(
    m: usize,
    steps: usize,
    policy: TieBreak,
    batch: F,
    rec: &mut R,
) -> SteppedOutcome
where
    F: FnMut(usize) -> Vec<ProcSet>,
    R: Recorder,
{
    let mut state = SteppedEftState::new(m, policy);
    let mut fold = SteppedFold::default();
    let stream = BatchStream {
        m,
        steps,
        t: 0,
        batch,
        round: Vec::new(),
        i: 0,
    };
    run_immediate(stream, &mut state, rec, &mut fold);
    SteppedOutcome {
        fmax: fold.fmax,
        final_profile: state.backlog_at(steps as u64),
        tasks: fold.tasks,
    }
}

/// Convenience: runs the Theorem 8 adversary stream on the fast path.
pub fn run_stepped_interval_adversary(
    m: usize,
    k: usize,
    rounds: usize,
    policy: TieBreak,
) -> SteppedOutcome {
    let types = flowsched_workloads::adversary::interval::round_types(m, k);
    let sets: Vec<ProcSet> = types
        .iter()
        .map(|&lambda| ProcSet::interval(lambda - 1, lambda + k - 2))
        .collect();
    run_stepped(m, rounds, policy, |_| sets.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::EftState;
    use flowsched_workloads::adversary::interval::run_interval_adversary;

    #[test]
    fn matches_event_driven_eft_on_the_adversary() {
        for (m, k) in [(6usize, 3usize), (8, 2), (10, 4)] {
            for tb in [TieBreak::Min, TieBreak::Max] {
                let rounds = m * m;
                let stepped = run_stepped_interval_adversary(m, k, rounds, tb);
                let mut algo = EftState::new(m, tb);
                let event = run_interval_adversary(&mut algo, k, rounds);
                assert_eq!(
                    stepped.fmax as f64,
                    event.fmax(),
                    "m={m} k={k} {tb}: stepped vs event-driven"
                );
                assert_eq!(stepped.tasks, event.instance.len());
            }
        }
    }

    #[test]
    fn matches_rand_policy_with_same_seed() {
        // Identical tie sets → identical RNG consumption → identical runs.
        let (m, k, rounds) = (6, 3, 80);
        let tb = TieBreak::Rand { seed: 17 };
        let stepped = run_stepped_interval_adversary(m, k, rounds, tb);
        let mut algo = EftState::new(m, tb);
        let event = run_interval_adversary(&mut algo, k, rounds);
        assert_eq!(stepped.fmax as f64, event.fmax());
    }

    #[test]
    fn final_profile_matches_backlog() {
        let (m, k, rounds) = (6, 3, 40);
        let stepped = run_stepped_interval_adversary(m, k, rounds, TieBreak::Min);
        let mut algo = EftState::new(m, TieBreak::Min);
        let event = run_interval_adversary(&mut algo, k, rounds);
        let event_profile =
            flowsched_core::profile::profile_at(&event.schedule, &event.instance, rounds as f64);
        let stepped_profile: Vec<f64> = stepped.final_profile.iter().map(|&w| w as f64).collect();
        assert_eq!(stepped_profile, event_profile);
    }

    #[test]
    fn empty_batches_are_fine() {
        let out = run_stepped(4, 10, TieBreak::Min, |_| Vec::new());
        assert_eq!(out.fmax, 0);
        assert_eq!(out.tasks, 0);
        assert_eq!(out.final_profile, vec![0; 4]);
    }

    #[test]
    fn overload_accumulates_backlog() {
        // Two tasks per step on one machine: backlog grows by 1 per step.
        let out = run_stepped(1, 10, TieBreak::Min, |_| {
            vec![ProcSet::full(1), ProcSet::full(1)]
        });
        assert_eq!(out.fmax, 11); // 10 steps → backlog reaches 11 at dispatch
        assert_eq!(out.final_profile, vec![10]);
    }

    #[test]
    #[should_panic(expected = "empty processing set")]
    fn empty_set_rejected() {
        let _ = run_stepped(2, 1, TieBreak::Min, |_| vec![ProcSet::empty()]);
    }

    #[test]
    fn stepped_state_matches_eft_state_dispatch_for_dispatch() {
        // Drive both states directly with the same unit-task sequence and
        // compare every assignment, not just aggregates.
        let mut int_state = SteppedEftState::new(5, TieBreak::Min);
        let mut f64_state = EftState::new(5, TieBreak::Min);
        for t in 0..30u64 {
            for s in 0..3 {
                let set = ProcSet::interval(s, s + 2);
                let task = Task::unit(t as f64);
                let a = int_state.dispatch_task(task, set.view());
                let b = f64_state.dispatch(task, &set);
                assert_eq!(a, b, "t={t} s={s}");
            }
        }
        assert_eq!(int_state.machine_completions(), f64_state.completions());
    }

    #[test]
    fn recorded_stepped_matches_plain_and_fills_histogram() {
        use flowsched_obs::{Counter, MemoryRecorder};
        let (m, k, rounds) = (6, 3, 40);
        let types = flowsched_workloads::adversary::interval::round_types(m, k);
        let sets: Vec<ProcSet> = types
            .iter()
            .map(|&lambda| ProcSet::interval(lambda - 1, lambda + k - 2))
            .collect();
        let plain = run_stepped(m, rounds, TieBreak::Min, |_| sets.clone());
        let mut rec = MemoryRecorder::with_defaults(m);
        let recorded = run_stepped_stream(m, rounds, TieBreak::Min, |_| sets.clone(), &mut rec);
        assert_eq!(plain, recorded);
        let n = plain.tasks as u64;
        assert_eq!(rec.counters().get(Counter::TasksArrived), n);
        assert_eq!(rec.counters().get(Counter::TasksDispatched), n);
        assert_eq!(rec.counters().get(Counter::TasksCompleted), n);
        // Every unit flow lands in the histogram; the max observed flow is
        // exactly the stepped fmax.
        assert_eq!(rec.flow_histogram().total(), n);
        // The engine emits transitions for the fast path too (uniform
        // convention): busy count leads idle count by at most m, and at
        // least one machine went busy on a non-empty run.
        let busy = rec.counters().get(Counter::MachineBusyTransitions);
        let idle = rec.counters().get(Counter::MachineIdleTransitions);
        assert!(busy >= 1, "stepped path must emit busy transitions now");
        assert!(
            idle < busy && busy <= idle + m as u64,
            "busy {busy} vs idle {idle}"
        );
    }

    #[test]
    fn stepped_transitions_match_event_driven_transitions() {
        use flowsched_obs::{Event, MemoryRecorder};
        // An under-loaded stream with forced gaps so real idle periods
        // occur: one unit task every other step on two machines.
        let batch = |t: usize| {
            if t % 2 == 0 {
                vec![ProcSet::full(2)]
            } else {
                Vec::new()
            }
        };
        let mut rec_stepped = MemoryRecorder::with_defaults(2);
        run_stepped_stream(2, 12, TieBreak::Min, batch, &mut rec_stepped);
        // Same workload through the float engine.
        let mut b = flowsched_core::instance::InstanceBuilder::new(2);
        for t in (0..12).step_by(2) {
            b.push_unit(t as f64, ProcSet::full(2));
        }
        let inst = b.build().unwrap();
        let mut rec_event = MemoryRecorder::with_defaults(2);
        let _ = flowsched_algos::eft_stream(
            flowsched_core::stream::InstanceStream::new(&inst),
            TieBreak::Min,
            &mut rec_event,
        );
        let transitions = |rec: &MemoryRecorder| -> Vec<Event> {
            rec.trace()
                .iter()
                .filter(|e| matches!(e, Event::MachineBusy { .. } | Event::MachineIdle { .. }))
                .copied()
                .collect()
        };
        assert_eq!(transitions(&rec_stepped), transitions(&rec_event));
    }
}
