//! One-call telemetry: a streaming run with aggregates *and* time
//! series recorded in a single pass.
//!
//! [`simulate_stream`](crate::driver::simulate_stream) is
//! recorder-generic; this module packages the common full-telemetry
//! choice — a [`MemoryRecorder`] (counters, flow histogram, event
//! trace) teed with a [`WindowedMetrics`] (tumbling-window time series)
//! — so callers like `flowsched-bench --bin timeline` and the
//! instrumented experiment sweeps don't each rebuild the
//! [`Tee`](flowsched_obs::Tee) plumbing. The stream is still consumed
//! exactly once and the report fold is unchanged, so the
//! [`SimReport`] equals an uninstrumented run's bit for bit
//! (`tests/obs_invariants.rs` pins recording transparency).

use flowsched_core::stream::ArrivalStream;
use flowsched_obs::{MemoryRecorder, ObsConfig, Tee, WindowConfig, WindowedMetrics};

use flowsched_algos::tiebreak::TieBreak;

use crate::driver::simulate_stream;
use crate::report::{ReportConfig, SimReport};

/// Configuration for a fully-telemetered run.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Aggregate-recorder parameters (trace ring, flow histogram).
    pub obs: ObsConfig,
    /// Time-series parameters (window width, per-window flow bins).
    pub window: WindowConfig,
}

impl TelemetryConfig {
    /// Defaults for `machines` machines and `window_width` time units
    /// per tumbling window.
    pub fn defaults(machines: usize, window_width: f64) -> Self {
        TelemetryConfig {
            obs: ObsConfig::defaults(machines),
            window: WindowConfig::defaults(machines, window_width),
        }
    }
}

/// Everything one telemetered run produces.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// The ordinary streaming report (identical to an uninstrumented
    /// run's).
    pub report: SimReport,
    /// Aggregates + event trace, ready for span derivation and the
    /// Chrome-trace / Prometheus exporters.
    pub recorder: MemoryRecorder,
    /// The tumbling-window time series, ready for the CSV exporter.
    pub windows: WindowedMetrics,
}

/// Runs EFT over the stream with full telemetry in one pass.
pub fn simulate_stream_telemetry<S: ArrivalStream>(
    stream: S,
    policy: TieBreak,
    report: &ReportConfig,
    telemetry: &TelemetryConfig,
) -> Telemetry {
    let mut rec = Tee(
        MemoryRecorder::new(&telemetry.obs),
        WindowedMetrics::new(telemetry.window.clone()),
    );
    let report = simulate_stream(stream, policy, report, &mut rec);
    let Tee(recorder, windows) = rec;
    Telemetry {
        report,
        recorder,
        windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_core::stream::InstanceStream;
    use flowsched_obs::prelude::*;
    use flowsched_obs::NoopRecorder;
    use flowsched_workloads::adversary::interval::interval_adversary_instance;

    #[test]
    fn telemetry_run_matches_uninstrumented_report() {
        let inst = interval_adversary_instance(6, 3, 12);
        let cfg = ReportConfig::default();
        let plain = simulate_stream(
            InstanceStream::new(&inst),
            TieBreak::Min,
            &cfg,
            &mut NoopRecorder,
        );
        let telemetry = simulate_stream_telemetry(
            InstanceStream::new(&inst),
            TieBreak::Min,
            &cfg,
            &TelemetryConfig::defaults(inst.machines(), 1.0),
        );
        assert_eq!(plain, telemetry.report);
        assert_eq!(
            telemetry.recorder.counters().get(Counter::TasksDispatched),
            inst.len() as u64
        );
        assert!(!telemetry.windows.windows().is_empty());
        let dispatched: u64 = telemetry.windows.windows().iter().map(|w| w.starts).sum();
        assert_eq!(dispatched, inst.len() as u64);
    }
}
