//! Flow-time metrics extracted from simulated schedules — batch
//! ([`SimReport::from_schedule`]) or folded online from a streaming run
//! ([`ReportBuilder`]) without ever materializing the flows.

use std::collections::VecDeque;

use flowsched_algos::engine::DispatchSink;
use flowsched_core::instance::Instance;
use flowsched_core::schedule::{Assignment, Schedule};
use flowsched_core::task::{Task, TaskId};
use flowsched_core::time::Time;
use flowsched_stats::descriptive::{mean, quantile};
use flowsched_stats::histogram::Histogram;

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Number of tasks included in the metrics (after warm-up exclusion).
    pub n_measured: usize,
    /// Maximum flow time (the paper's objective).
    pub fmax: Time,
    /// Maximum *weighted* flow time `max wᵢ·Fᵢ` (Azar–Touitou's
    /// objective); equals [`fmax`](Self::fmax) when every weight is 1.
    pub weighted_fmax: Time,
    /// Mean flow time.
    pub mean_flow: Time,
    /// Median flow time.
    pub p50: Time,
    /// 95th percentile flow time.
    pub p95: Time,
    /// 99th percentile flow time (the "tail latency" of the introduction).
    pub p99: Time,
    /// Maximum stretch `max Fᵢ/pᵢ` (slowdown), Bender et al.'s companion
    /// metric.
    pub max_stretch: Time,
    /// Mean stretch.
    pub mean_stretch: Time,
    /// Per-machine busy-time fraction of the makespan.
    pub utilization: Vec<f64>,
    /// Saturation heuristic: mean flow of the last quarter of tasks
    /// divided by the mean flow of the first quarter (after warm-up).
    /// Values ≫ 1 indicate an unstable (overloaded) system where flow
    /// grows with time.
    pub drift: f64,
}

impl SimReport {
    /// Computes the report from a schedule, ignoring the first
    /// `warmup_tasks` tasks in the flow statistics (utilization still
    /// covers the whole run).
    ///
    /// # Panics
    /// Panics if warm-up excludes every task of a non-empty instance.
    pub fn from_schedule(schedule: &Schedule, inst: &Instance, warmup_tasks: usize) -> Self {
        let n = inst.len();
        if n == 0 {
            return SimReport {
                n_measured: 0,
                fmax: 0.0,
                weighted_fmax: 0.0,
                mean_flow: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max_stretch: 0.0,
                mean_stretch: 0.0,
                utilization: vec![0.0; inst.machines()],
                drift: 1.0,
            };
        }
        assert!(warmup_tasks < n, "warm-up excludes every task");
        let flows: Vec<Time> = (warmup_tasks..n)
            .map(|i| schedule.flow_time(TaskId(i), inst))
            .collect();
        let weighted_fmax = (warmup_tasks..n)
            .map(|i| inst.task(TaskId(i)).weight * schedule.flow_time(TaskId(i), inst))
            .fold(0.0, f64::max);
        let stretches: Vec<Time> = (warmup_tasks..n)
            .map(|i| schedule.stretch(TaskId(i), inst))
            .collect();

        let makespan = schedule.makespan(inst);
        let mut busy = vec![0.0_f64; inst.machines()];
        for (id, task, _) in inst.iter() {
            busy[schedule.machine(id).index()] += task.ptime;
        }
        let utilization = busy
            .iter()
            .map(|&b| if makespan > 0.0 { b / makespan } else { 0.0 })
            .collect();

        let quarter = (flows.len() / 4).max(1);
        let head = mean(&flows[..quarter]);
        let tail = mean(&flows[flows.len() - quarter..]);
        // A degenerate schedule (all-zero or non-finite flows) has no
        // meaningful trend; report the neutral drift of 1.0 rather than
        // NaN/inf so `looks_saturated` stays well-defined.
        let drift = if head.is_finite() && head > 0.0 {
            tail / head
        } else {
            1.0
        };

        SimReport {
            n_measured: flows.len(),
            fmax: flows.iter().cloned().fold(0.0, f64::max),
            weighted_fmax,
            mean_flow: mean(&flows),
            p50: quantile(&flows, 0.5),
            p95: quantile(&flows, 0.95),
            p99: quantile(&flows, 0.99),
            max_stretch: stretches.iter().cloned().fold(0.0, f64::max),
            mean_stretch: mean(&stretches),
            utilization,
            drift,
        }
    }

    /// True when the drift heuristic indicates an overloaded system.
    pub fn looks_saturated(&self) -> bool {
        self.drift > 2.0
    }
}

/// How a [`ReportBuilder`] folds a stream into a [`SimReport`].
#[derive(Debug, Clone, Copy)]
pub struct ReportConfig {
    /// Tasks excluded from the flow statistics, counted from the front
    /// of the stream (warmup by prefix count — the streaming analogue
    /// of [`SimConfig::warmup_fraction`](crate::SimConfig)).
    pub warmup_tasks: usize,
    /// Flow histogram range `[lo, hi)` backing the online percentile
    /// estimates. Flows outside it clamp to the nearest edge.
    pub hist_range: (f64, f64),
    /// Number of histogram bins. Percentiles are exact when flows land
    /// on bin lower edges (e.g. quarter-integer flows with the default
    /// quarter-width bins) and off by at most a bin width otherwise.
    pub hist_bins: usize,
    /// Expected number of *measured* (post-warmup) tasks, when known.
    /// Sizes the drift quarters so that a hinted run reproduces the
    /// batch drift exactly; `None` falls back to a fixed 1024-task
    /// window (drift stays exact up to ~4k measured tasks, then becomes
    /// a bounded-window approximation).
    pub expected_measured: Option<usize>,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            warmup_tasks: 0,
            hist_range: (0.0, 1024.0),
            hist_bins: 4096,
            expected_measured: None,
        }
    }
}

/// Streaming [`SimReport`] fold: a [`DispatchSink`] that consumes
/// `(task, assignment)` pairs straight from an engine and maintains
/// every report field online. Memory is O(machines + histogram bins +
/// drift window) — independent of the number of tasks, which is what
/// lets a million-task stream produce a full report without a schedule
/// ever existing.
///
/// Exactness contract versus [`SimReport::from_schedule`] on the same
/// run: `n_measured`, `fmax`, `weighted_fmax`, `mean_flow`, `max_stretch`,
/// `mean_stretch`, `utilization` are bit-identical (same fold order);
/// `drift` is bit-identical while the quarter window fits (see
/// [`ReportConfig::expected_measured`]); `p50/p95/p99` are bit-identical
/// whenever flows sit on histogram bin edges, and within one bin width
/// otherwise. `tests/streaming_equivalence.rs` pins this.
#[derive(Debug, Clone)]
pub struct ReportBuilder {
    warmup: usize,
    seen: usize,
    n: usize,
    sum_flow: f64,
    fmax: f64,
    weighted_fmax: f64,
    sum_stretch: f64,
    max_stretch: f64,
    hist: Histogram,
    /// First `window` measured flows (head of the drift ratio).
    head: Vec<f64>,
    /// Last ≤ `window` measured flows (tail of the drift ratio).
    tail: VecDeque<f64>,
    window: usize,
    busy: Vec<f64>,
    makespan: f64,
}

impl ReportBuilder {
    /// Fresh fold for a run on `m` machines.
    pub fn new(m: usize, config: &ReportConfig) -> Self {
        let window = config.expected_measured.map_or(1024, |n| (n / 4).max(1));
        ReportBuilder {
            warmup: config.warmup_tasks,
            seen: 0,
            n: 0,
            sum_flow: 0.0,
            fmax: 0.0,
            weighted_fmax: 0.0,
            sum_stretch: 0.0,
            max_stretch: 0.0,
            hist: Histogram::new(config.hist_range.0, config.hist_range.1, config.hist_bins),
            head: Vec::new(),
            tail: VecDeque::new(),
            window,
            busy: vec![0.0; m],
            makespan: 0.0,
        }
    }

    /// Tasks folded in so far (including warmup).
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Finalizes the fold.
    ///
    /// # Panics
    /// Panics if warm-up excluded every task of a non-empty run
    /// (mirroring [`SimReport::from_schedule`]).
    pub fn finish(self) -> SimReport {
        if self.seen == 0 {
            return SimReport {
                n_measured: 0,
                fmax: 0.0,
                weighted_fmax: 0.0,
                mean_flow: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max_stretch: 0.0,
                mean_stretch: 0.0,
                utilization: vec![0.0; self.busy.len()],
                drift: 1.0,
            };
        }
        assert!(self.n > 0, "warm-up excludes every task");
        let utilization = self
            .busy
            .iter()
            .map(|&b| {
                if self.makespan > 0.0 {
                    b / self.makespan
                } else {
                    0.0
                }
            })
            .collect();
        // The same quarter the batch report uses, clamped to what the
        // bounded windows retained.
        let quarter = (self.n / 4).max(1).min(self.window);
        let head = mean(&self.head[..quarter.min(self.head.len())]);
        let tail_flows: Vec<f64> = self
            .tail
            .iter()
            .copied()
            .skip(self.tail.len().saturating_sub(quarter))
            .collect();
        let tail = mean(&tail_flows);
        let drift = if head.is_finite() && head > 0.0 {
            tail / head
        } else {
            1.0
        };
        SimReport {
            n_measured: self.n,
            fmax: self.fmax,
            weighted_fmax: self.weighted_fmax,
            mean_flow: self.sum_flow / self.n as f64,
            p50: self.hist.quantile(0.5).unwrap_or(0.0),
            p95: self.hist.quantile(0.95).unwrap_or(0.0),
            p99: self.hist.quantile(0.99).unwrap_or(0.0),
            max_stretch: self.max_stretch,
            mean_stretch: self.sum_stretch / self.n as f64,
            utilization,
            drift,
        }
    }
}

impl DispatchSink for ReportBuilder {
    fn accept(&mut self, _seq: u64, task: Task, assignment: Assignment) {
        let completion = assignment.start + task.ptime;
        // Utilization and makespan cover the whole run, warmup included,
        // exactly as the batch report does.
        self.busy[assignment.machine.index()] += task.ptime;
        self.makespan = self.makespan.max(completion);
        self.seen += 1;
        if self.seen <= self.warmup {
            return;
        }
        let flow = completion - task.release;
        let stretch = flow / task.ptime;
        self.n += 1;
        self.sum_flow += flow;
        self.fmax = self.fmax.max(flow);
        self.weighted_fmax = self.weighted_fmax.max(task.weight * flow);
        self.sum_stretch += stretch;
        self.max_stretch = self.max_stretch.max(stretch);
        self.hist.record(flow);
        if self.head.len() < self.window {
            self.head.push(flow);
        }
        if self.tail.len() == self.window {
            self.tail.pop_front();
        }
        self.tail.push_back(flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::{eft, TieBreak};
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::procset::ProcSet;

    fn light_instance() -> Instance {
        // One task per step on 2 machines: flow 1 for everyone.
        let mut b = InstanceBuilder::new(2);
        for t in 0..40 {
            b.push_unit(t as f64, ProcSet::full(2));
        }
        b.build().unwrap()
    }

    #[test]
    fn light_load_report() {
        let inst = light_instance();
        let s = eft(&inst, TieBreak::Min);
        let r = SimReport::from_schedule(&s, &inst, 0);
        assert_eq!(r.n_measured, 40);
        assert_eq!(r.fmax, 1.0);
        assert_eq!(r.p50, 1.0);
        assert!((r.drift - 1.0).abs() < 1e-9);
        assert!(!r.looks_saturated());
    }

    #[test]
    fn weighted_fmax_tracks_weights() {
        use flowsched_core::task::Task;
        let inst = light_instance();
        let s = eft(&inst, TieBreak::Min);
        let r = SimReport::from_schedule(&s, &inst, 0);
        // All weights default to 1 → the two maxima coincide.
        assert_eq!(r.weighted_fmax, r.fmax);

        // A weighted task dominates even with a modest flow.
        let mut b = InstanceBuilder::new(1);
        b.push(Task::new(0.0, 2.0), ProcSet::full(1));
        b.push(Task::unit(0.0).with_weight(10.0), ProcSet::full(1));
        let inst = b.build().unwrap();
        let s = eft(&inst, TieBreak::Min);
        let r = SimReport::from_schedule(&s, &inst, 0);
        // Weighted task completes at 3 (flow 3, weight 10).
        assert_eq!(r.fmax, 3.0);
        assert_eq!(r.weighted_fmax, 30.0);
    }

    #[test]
    fn stretch_matches_flow_for_unit_tasks() {
        let inst = light_instance();
        let s = eft(&inst, TieBreak::Min);
        let r = SimReport::from_schedule(&s, &inst, 0);
        // Unit tasks: stretch == flow.
        assert_eq!(r.max_stretch, r.fmax);
        assert_eq!(r.mean_stretch, r.mean_flow);
    }

    #[test]
    fn short_tasks_dominate_stretch() {
        use flowsched_core::task::Task;
        // A short task stuck behind a long one has huge stretch but small
        // flow relative to the long task's.
        let mut b = InstanceBuilder::new(1);
        b.push(Task::new(0.0, 10.0), ProcSet::full(1));
        b.push(Task::new(0.0, 0.25), ProcSet::full(1));
        let inst = b.build().unwrap();
        let s = eft(&inst, TieBreak::Min);
        let r = SimReport::from_schedule(&s, &inst, 0);
        // Short task completes at 10.25: flow 10.25, stretch 41.
        assert_eq!(r.max_stretch, 41.0);
        assert!((r.fmax - 10.25).abs() < 1e-12);
    }

    #[test]
    fn overload_shows_drift() {
        // 3 tasks per step on 1 machine: backlog grows linearly.
        let mut b = InstanceBuilder::new(1);
        for t in 0..30 {
            for _ in 0..3 {
                b.push_unit(t as f64, ProcSet::full(1));
            }
        }
        let inst = b.build().unwrap();
        let s = eft(&inst, TieBreak::Min);
        let r = SimReport::from_schedule(&s, &inst, 0);
        assert!(r.drift > 2.0, "drift {d}", d = r.drift);
        assert!(r.looks_saturated());
        assert!(r.fmax > 30.0);
    }

    #[test]
    fn warmup_excludes_initial_tasks() {
        // A pathological first task, calm afterwards.
        let mut b = InstanceBuilder::new(1);
        for _ in 0..5 {
            b.push_unit(0.0, ProcSet::full(1));
        }
        for t in 10..30 {
            b.push_unit(t as f64, ProcSet::full(1));
        }
        let inst = b.build().unwrap();
        let s = eft(&inst, TieBreak::Min);
        let all = SimReport::from_schedule(&s, &inst, 0);
        let warm = SimReport::from_schedule(&s, &inst, 5);
        assert!(all.fmax >= 5.0);
        assert_eq!(warm.fmax, 1.0);
        assert_eq!(warm.n_measured, 20);
    }

    #[test]
    fn utilization_reflects_assignment() {
        let inst = light_instance();
        let s = eft(&inst, TieBreak::Min);
        let r = SimReport::from_schedule(&s, &inst, 0);
        // All tasks land on M1 (always idle when the next arrives).
        assert!(r.utilization[0] > 0.9);
        assert_eq!(r.utilization[1], 0.0);
    }

    #[test]
    fn empty_instance_report() {
        let inst = Instance::unrestricted(2, vec![]).unwrap();
        let s = eft(&inst, TieBreak::Min);
        let r = SimReport::from_schedule(&s, &inst, 0);
        assert_eq!(r.n_measured, 0);
        assert_eq!(r.fmax, 0.0);
    }

    #[test]
    fn all_zero_flows_give_neutral_drift_not_nan() {
        use flowsched_core::machine::MachineId;
        use flowsched_core::schedule::Assignment;
        use flowsched_core::task::Task;
        // Valid instances always have positive flows (ptime > 0), so the
        // degenerate head == 0.0 case needs a hand-built schedule whose
        // starts pre-date the releases: flow = start + p − r = 0 for all.
        let inst =
            Instance::unrestricted(1, (0..8).map(|_| Task::new(1.0, 1.0)).collect()).unwrap();
        let s = Schedule::new((0..8).map(|_| Assignment::new(MachineId(0), 0.0)).collect());
        let r = SimReport::from_schedule(&s, &inst, 0);
        assert!(r.drift.is_finite(), "drift must not be NaN/inf");
        assert_eq!(r.drift, 1.0);
        assert!(!r.looks_saturated());
    }

    #[test]
    #[should_panic(expected = "warm-up excludes")]
    fn oversized_warmup_rejected() {
        let inst = light_instance();
        let s = eft(&inst, TieBreak::Min);
        let _ = SimReport::from_schedule(&s, &inst, 40);
    }
}
