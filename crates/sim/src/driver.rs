//! Simulation entry points — batch (`simulate*`, materializing a
//! [`Schedule`]) and streaming ([`simulate_stream`], folding a report
//! straight off an [`ArrivalStream`] in O(machines + window) memory).

use flowsched_algos::eft::EftState;
use flowsched_algos::engine::ShardedConfig;
use flowsched_algos::indexed::DispatchKernel;
use flowsched_algos::registry::PolicySpec;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_core::fault::FaultPlan;
use flowsched_core::instance::Instance;
use flowsched_core::schedule::Schedule;
use flowsched_core::stream::{ArrivalStream, InstanceStream};
use flowsched_core::time::Time;
use flowsched_obs::{NoopRecorder, Recorder};

use crate::report::{ReportBuilder, ReportConfig, SimReport};

/// Simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Tie-break policy of the EFT scheduler under test.
    pub policy: TieBreak,
    /// Fraction of initial tasks excluded from flow statistics (the
    /// paper's runs are long enough "to reach a steady state"; excluding
    /// the ramp-up makes short runs comparable).
    pub warmup_fraction: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            policy: TieBreak::Min,
            warmup_fraction: 0.0,
        }
    }
}

/// Runs EFT over the instance and reports flow metrics.
///
/// # Panics
/// Panics if `warmup_fraction` is outside `[0, 1)`.
pub fn simulate(inst: &Instance, config: &SimConfig) -> (Schedule, SimReport) {
    simulate_with(inst, config, &mut NoopRecorder)
}

/// [`simulate`] with the run traced into `rec` — the canonical
/// recorder-generic batch entry point. Every task arrival, dispatch,
/// projected completion, and machine transition flows through the
/// recorder (see `flowsched_obs`), alongside the usual
/// `(Schedule, SimReport)` result. With [`NoopRecorder`] this is
/// exactly [`simulate`] — the hooks compile away, which
/// `tests/obs_invariants.rs` pins by comparing schedules and
/// `tests/report_consistency.rs` exploits to cross-check `SimReport`
/// against trace-derived aggregates.
///
/// # Panics
/// Panics if `warmup_fraction` is outside `[0, 1)`.
pub fn simulate_with<R: Recorder>(
    inst: &Instance,
    config: &SimConfig,
    rec: &mut R,
) -> (Schedule, SimReport) {
    assert!(
        (0.0..1.0).contains(&config.warmup_fraction),
        "warmup fraction must be in [0, 1)"
    );
    let schedule = flowsched_algos::eft::eft_stream(InstanceStream::new(inst), config.policy, rec);
    let warmup = (inst.len() as f64 * config.warmup_fraction) as usize;
    let report =
        SimReport::from_schedule(&schedule, inst, warmup.min(inst.len().saturating_sub(1)));
    (schedule, report)
}

/// Runs EFT over an arbitrary [`ArrivalStream`] and folds the report
/// online — no `Instance`, no `Schedule`, no per-task allocation.
/// Memory is bounded by machines + histogram bins + drift window (see
/// [`ReportBuilder`]), so million-task streams run in constant space.
///
/// When `report.expected_measured` is `None` and the stream knows its
/// length, the drift window is sized from `len_hint() − warmup` so a
/// replayed instance reproduces the batch drift exactly.
///
/// Dispatch runs on [`DispatchKernel::Auto`]: large-`m` runs get the
/// indexed O(log m) kernel, which produces bitwise-identical schedules
/// (see `flowsched_algos::indexed`). Use
/// [`simulate_stream_with_kernel`] to force either path.
pub fn simulate_stream<S: ArrivalStream, R: Recorder>(
    stream: S,
    policy: TieBreak,
    report: &ReportConfig,
    rec: &mut R,
) -> SimReport {
    simulate_stream_with_kernel(stream, policy, DispatchKernel::Auto, report, rec)
}

/// [`simulate_stream`] with an explicit dispatch-kernel choice —
/// `Scalar` forces the linear-scan oracle, `Indexed` forces the
/// segment-tree kernel regardless of machine count (the scaling benches
/// compare the two this way); `Auto` consults the stream's
/// [`structure_hint`](ArrivalStream::structure_hint) so narrow sets on
/// moderate machine counts stay on the scalar path.
pub fn simulate_stream_with_kernel<S: ArrivalStream, R: Recorder>(
    stream: S,
    policy: TieBreak,
    kernel: DispatchKernel,
    report: &ReportConfig,
    rec: &mut R,
) -> SimReport {
    simulate_stream_policy(stream, &PolicySpec::eft(policy, kernel), report, rec)
}

/// [`simulate_stream`] for an arbitrary registry policy: the
/// [`PolicySpec`] (typically parsed from a string like
/// `eft:min:indexed` or `weft@2:rand@7`) is built through the one
/// registry construction path — kernel resolution consults the
/// stream's [`structure_hint`](ArrivalStream::structure_hint) exactly
/// as the EFT entry points do — and the report folds online. This is
/// what the competitive-ratio harness and the bench bins drive.
pub fn simulate_stream_policy<S: ArrivalStream, R: Recorder>(
    stream: S,
    spec: &PolicySpec,
    report: &ReportConfig,
    rec: &mut R,
) -> SimReport {
    let mut cfg = *report;
    if cfg.expected_measured.is_none() {
        cfg.expected_measured = stream
            .len_hint()
            .map(|n| n.saturating_sub(cfg.warmup_tasks));
    }
    let mut builder = ReportBuilder::new(stream.machines(), &cfg);
    flowsched_algos::engine::run_policy(stream, spec, rec, &mut builder);
    builder.finish()
}

/// [`simulate_stream`] on the sharded engine: the stream's own
/// [`shard_plan`](ArrivalStream::shard_plan) partitions the machines
/// into clusters, each cluster dispatches on its own worker thread
/// ([`flowsched_algos::engine::run_immediate_sharded`]), and the report
/// folds on the calling thread in arrival order — so for `Min`/`Max`
/// tie-breaks the result is bitwise-identical to [`simulate_stream`]
/// at every thread count (pinned by `tests/sharded_equivalence.rs`).
/// Streams without cluster structure collapse to a single shard and run
/// inline, costing nothing over the sequential path.
pub fn simulate_stream_sharded<S: ArrivalStream, R: Recorder>(
    stream: S,
    policy: TieBreak,
    report: &ReportConfig,
    rec: &mut R,
) -> SimReport {
    let plan = stream.shard_plan(flowsched_core::shard::DEFAULT_MAX_SHARDS);
    simulate_stream_sharded_with(
        stream,
        policy,
        DispatchKernel::Auto,
        &plan,
        &ShardedConfig::default(),
        report,
        rec,
    )
}

/// [`simulate_stream_sharded`] with every knob exposed: an explicit
/// kernel choice, shard plan, and [`ShardedConfig`] (thread count,
/// batch size, queue depth). `Auto` resolves per shard on the shard's
/// width inside the engine.
pub fn simulate_stream_sharded_with<S: ArrivalStream, R: Recorder>(
    stream: S,
    policy: TieBreak,
    kernel: DispatchKernel,
    plan: &flowsched_core::shard::ShardPlan,
    cfg: &ShardedConfig,
    report: &ReportConfig,
    rec: &mut R,
) -> SimReport {
    simulate_stream_policy_sharded(
        stream,
        &PolicySpec::eft(policy, kernel),
        plan,
        cfg,
        report,
        rec,
    )
}

/// [`simulate_stream_policy`] on the sharded engine: each machine
/// cluster runs a shard-local policy built via
/// [`PolicySpec::for_shard`] (seeded tie-breaks re-seed per shard
/// exactly as the sequential-vs-sharded equivalence expects) and the
/// report folds on the calling thread in arrival order.
pub fn simulate_stream_policy_sharded<S: ArrivalStream, R: Recorder>(
    stream: S,
    spec: &PolicySpec,
    plan: &flowsched_core::shard::ShardPlan,
    cfg: &ShardedConfig,
    report: &ReportConfig,
    rec: &mut R,
) -> SimReport {
    let mut rcfg = *report;
    if rcfg.expected_measured.is_none() {
        rcfg.expected_measured = stream
            .len_hint()
            .map(|n| n.saturating_sub(rcfg.warmup_tasks));
    }
    let mut builder = ReportBuilder::new(stream.machines(), &rcfg);
    flowsched_algos::engine::run_policy_sharded(stream, spec, plan, cfg, rec, &mut builder);
    builder.finish()
}

/// [`simulate_stream_policy_sharded`] with a wall-clock
/// [`PipelineProbe`](flowsched_obs::pipeline::PipelineProbe) observing
/// the transport stages (see `flowsched_parallel::sharded`). The probe
/// watches only the pipeline — the report is bit-identical to the
/// unprobed run; pass a
/// [`PipelineMetrics`](flowsched_obs::pipeline::PipelineMetrics) handle
/// and read the stage table off it afterwards.
pub fn simulate_stream_policy_sharded_probed<S, R, P>(
    stream: S,
    spec: &PolicySpec,
    plan: &flowsched_core::shard::ShardPlan,
    cfg: &ShardedConfig,
    report: &ReportConfig,
    rec: &mut R,
    probe: P,
) -> SimReport
where
    S: ArrivalStream,
    R: Recorder,
    P: flowsched_obs::pipeline::PipelineProbe,
{
    let mut rcfg = *report;
    if rcfg.expected_measured.is_none() {
        rcfg.expected_measured = stream
            .len_hint()
            .map(|n| n.saturating_sub(rcfg.warmup_tasks));
    }
    let mut builder = ReportBuilder::new(stream.machines(), &rcfg);
    flowsched_algos::engine::run_policy_sharded_probed(
        stream,
        spec,
        plan,
        cfg,
        rec,
        &mut builder,
        probe,
    );
    builder.finish()
}

/// [`simulate_stream`] under fault injection: runs availability-aware
/// EFT ([`flowsched_algos::faulty`]) over the stream with `plan`'s
/// outages, speed factors, and dispatch latency applied, folding the
/// report online. The plan's crash/recover transitions are replayed
/// into `rec` first, so outage spans reach exported traces. A
/// fault-free plan reproduces [`simulate_stream`] with the scalar
/// kernel bitwise (report and trace).
///
/// The drift window is sized from the stream's `len_hint` exactly as in
/// [`simulate_stream`] — the faulty adapter never drops tasks, so the
/// hint still counts every eventual arrival.
pub fn simulate_stream_faulty<S: ArrivalStream, R: Recorder>(
    stream: S,
    plan: &FaultPlan,
    policy: TieBreak,
    report: &ReportConfig,
    rec: &mut R,
) -> SimReport {
    let mut cfg = *report;
    if cfg.expected_measured.is_none() {
        cfg.expected_measured = stream
            .len_hint()
            .map(|n| n.saturating_sub(cfg.warmup_tasks));
    }
    let mut builder = ReportBuilder::new(stream.machines(), &cfg);
    flowsched_algos::faulty::run_immediate_faulty(stream, plan, policy, rec, &mut builder);
    builder.finish()
}

/// [`simulate_stream_faulty`] on the sharded engine: the faulty stream
/// (restriction, stretching, re-queueing) runs on the calling thread as
/// part of routing, each machine cluster dispatches availability-aware
/// EFT over its [`FaultPlan::slice`] on a worker thread, and the report
/// folds in arrival order — bitwise-identical to the sequential faulty
/// run for `Min`/`Max` tie-breaks at every thread count.
pub fn simulate_stream_faulty_sharded<S: ArrivalStream, R: Recorder>(
    stream: S,
    plan: &FaultPlan,
    policy: TieBreak,
    report: &ReportConfig,
    rec: &mut R,
) -> SimReport {
    let shard_plan = stream.shard_plan(flowsched_core::shard::DEFAULT_MAX_SHARDS);
    let mut cfg = *report;
    if cfg.expected_measured.is_none() {
        cfg.expected_measured = stream
            .len_hint()
            .map(|n| n.saturating_sub(cfg.warmup_tasks));
    }
    let mut builder = ReportBuilder::new(stream.machines(), &cfg);
    flowsched_algos::faulty::run_immediate_faulty_sharded(
        stream,
        plan,
        policy,
        &shard_plan,
        &ShardedConfig::default(),
        rec,
        &mut builder,
    );
    builder.finish()
}

/// Replays the instance through an incremental [`EftState`], snapshotting
/// the machine backlog (`w_t`) at each requested sample time. Sample
/// times must be sorted ascending; each snapshot reflects all tasks
/// released strictly before the sample time (matching
/// [`flowsched_core::profile::profile_at`]).
pub fn profile_trace(inst: &Instance, policy: TieBreak, sample_times: &[Time]) -> Vec<Vec<Time>> {
    assert!(
        sample_times.windows(2).all(|w| w[0] <= w[1]),
        "sample times must be sorted"
    );
    let mut state = EftState::new(inst.machines(), policy);
    let mut snapshots = Vec::with_capacity(sample_times.len());
    let mut next_sample = 0usize;
    // Snapshots are filled through `backlog_into` so each output row is
    // allocated exactly once at machine-count capacity.
    let take_snapshot = |state: &EftState, t: Time, out: &mut Vec<Vec<Time>>| {
        let mut snap = Vec::with_capacity(state.machines());
        state.backlog_into(t, &mut snap);
        out.push(snap);
    };
    for (_, task, set) in inst.iter() {
        while next_sample < sample_times.len() && sample_times[next_sample] <= task.release {
            take_snapshot(&state, sample_times[next_sample], &mut snapshots);
            next_sample += 1;
        }
        state.dispatch(task, set);
    }
    while next_sample < sample_times.len() {
        take_snapshot(&state, sample_times[next_sample], &mut snapshots);
        next_sample += 1;
    }
    snapshots
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::procset::ProcSet;
    use flowsched_workloads::adversary::interval::interval_adversary_instance;

    #[test]
    fn simulate_produces_valid_schedule_and_report() {
        let inst = interval_adversary_instance(6, 3, 10);
        let (schedule, report) = simulate(&inst, &SimConfig::default());
        schedule.validate(&inst).unwrap();
        assert_eq!(report.n_measured, inst.len());
        assert!(report.fmax >= 1.0);
    }

    #[test]
    fn profile_trace_matches_offline_profile() {
        use flowsched_core::profile::profile_at;
        let inst = interval_adversary_instance(6, 3, 8);
        let times: Vec<f64> = (0..8).map(|t| t as f64).collect();
        let trace = profile_trace(&inst, TieBreak::Min, &times);
        let schedule = flowsched_algos::eft::eft(&inst, TieBreak::Min);
        for (i, &t) in times.iter().enumerate() {
            let offline = profile_at(&schedule, &inst, t);
            assert_eq!(trace[i], offline, "t = {t}");
        }
    }

    #[test]
    fn trailing_samples_after_all_tasks() {
        let mut b = InstanceBuilder::new(2);
        b.push_unit(0.0, ProcSet::full(2));
        let inst = b.build().unwrap();
        let trace = profile_trace(&inst, TieBreak::Min, &[0.5, 10.0]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0], vec![0.5, 0.0]);
        assert_eq!(trace[1], vec![0.0, 0.0]);
    }

    #[test]
    fn warmup_fraction_trims_metrics() {
        let inst = interval_adversary_instance(6, 3, 20);
        let (_, full) = simulate(&inst, &SimConfig::default());
        let (_, trimmed) = simulate(
            &inst,
            &SimConfig {
                warmup_fraction: 0.5,
                ..Default::default()
            },
        );
        assert!(trimmed.n_measured < full.n_measured);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_samples_rejected() {
        let inst = interval_adversary_instance(6, 3, 2);
        let _ = profile_trace(&inst, TieBreak::Min, &[2.0, 1.0]);
    }
}
