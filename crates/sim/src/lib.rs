//! # flowsched-sim
//!
//! Simulation driver for the paper's Section 7.4 experiments and for the
//! profile-dynamics illustrations of Theorem 8 (Figures 4–6).
//!
//! - [`driver`]: runs an online scheduler over an instance, with optional
//!   warm-up exclusion, and samples the schedule profile `w_t` over time.
//! - [`stepped`]: an integer time-stepped fast path for synchronous
//!   unit-task batch workloads (the adversary streams), pinned to the
//!   event-driven engine by tests and benchmarked against it.
//! - [`report`]: flow-time metrics (max, mean, tail percentiles),
//!   per-machine utilization, and a saturation heuristic (when the
//!   offered load exceeds the cluster's theoretical max load, flow times
//!   grow without bound and medians stop being meaningful — the paper's
//!   Figure 11 curves end at the LP max-load line for the same reason).

pub mod driver;
pub mod report;
pub mod stepped;

pub use driver::{SimConfig, profile_trace, simulate, simulate_recorded};
pub use report::SimReport;
pub use stepped::{
    SteppedOutcome, run_stepped, run_stepped_interval_adversary, run_stepped_recorded,
};
