//! # flowsched-sim
//!
//! Simulation driver for the paper's Section 7.4 experiments and for the
//! profile-dynamics illustrations of Theorem 8 (Figures 4–6).
//!
//! - [`driver`]: runs an online scheduler over an instance (batch) or an
//!   [`ArrivalStream`](flowsched_core::ArrivalStream) (constant memory),
//!   with optional warm-up exclusion, and samples the schedule profile
//!   `w_t` over time.
//! - [`stepped`]: an integer time-stepped fast path for synchronous
//!   unit-task batch workloads (the adversary streams), expressed as a
//!   specialization of the shared streaming engine and pinned to the
//!   event-driven `EftState` by tests.
//! - [`report`]: flow-time metrics (max, mean, tail percentiles),
//!   per-machine utilization, and a saturation heuristic (when the
//!   offered load exceeds the cluster's theoretical max load, flow times
//!   grow without bound and medians stop being meaningful — the paper's
//!   Figure 11 curves end at the LP max-load line for the same reason).
//!   Reports come in two shapes: batch from a materialized schedule, or
//!   folded online by [`ReportBuilder`] while the stream runs.
//! - [`telemetry`]: the full-telemetry convenience — one streaming pass
//!   that produces the report, the aggregate recorder, and the
//!   tumbling-window time series together (the engine behind
//!   `flowsched-bench --bin timeline`).

pub mod driver;
pub mod report;
pub mod stepped;
pub mod telemetry;

pub use driver::{
    profile_trace, simulate, simulate_stream, simulate_stream_faulty,
    simulate_stream_faulty_sharded, simulate_stream_policy, simulate_stream_policy_sharded,
    simulate_stream_policy_sharded_probed, simulate_stream_sharded, simulate_stream_sharded_with,
    simulate_stream_with_kernel, simulate_with, SimConfig,
};
pub use report::{ReportBuilder, ReportConfig, SimReport};
pub use stepped::{
    run_stepped, run_stepped_interval_adversary, run_stepped_stream, SteppedEftState,
    SteppedOutcome,
};
pub use telemetry::{simulate_stream_telemetry, Telemetry, TelemetryConfig};
