//! Dinic's maximum-flow algorithm on real-valued capacities.
//!
//! Used by [`crate::loadflow`] to answer "is cluster load `λ` feasible
//! under this replication structure?" — a bipartite transportation
//! feasibility question — and as an independent cross-check of the
//! simplex solver.
//!
//! Capacities are `f64`; the augmenting logic treats values below
//! [`FLOW_EPS`] as zero, which is safe for the well-scaled networks this
//! workspace builds (capacities in `[0, m]`).

/// Residual capacities below this threshold are treated as saturated.
pub const FLOW_EPS: f64 = 1e-12;

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: f64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A flow network over `n` nodes with directed capacitated edges.
///
/// ```
/// use flowsched_solver::maxflow::FlowNetwork;
///
/// let mut g = FlowNetwork::new(4);
/// g.add_edge(0, 1, 3.0);
/// g.add_edge(0, 2, 2.0);
/// g.add_edge(1, 3, 2.0);
/// g.add_edge(2, 3, 3.0);
/// assert!((g.max_flow(0, 3) - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<Edge>>,
    level: Vec<i32>,
    iter: Vec<usize>,
    /// Reusable BFS queue (plain ring over a Vec) so repeated
    /// [`max_flow`](Self::max_flow) calls allocate nothing.
    queue: Vec<usize>,
    /// Augmenting paths pushed by the most recent
    /// [`max_flow`](Self::max_flow) call.
    augmentations: u64,
}

impl FlowNetwork {
    /// Creates an empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
            queue: Vec::with_capacity(n),
            augmentations: 0,
        }
    }

    /// Number of augmenting paths the most recent
    /// [`max_flow`](Self::max_flow) call pushed — the "iterations"
    /// payload of a `LoadFeasibility` observability probe.
    pub fn last_augmentations(&self) -> u64 {
        self.augmentations
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from → to` with capacity `cap ≥ 0`.
    /// Returns an edge handle usable with [`flow_on`](Self::flow_on).
    ///
    /// # Panics
    /// Panics on out-of-range nodes or negative/non-finite capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) -> EdgeHandle {
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "node out of range"
        );
        assert!(
            cap.is_finite() && cap >= 0.0,
            "capacity must be finite and non-negative"
        );
        let fwd = self.graph[from].len();
        let bwd = self.graph[to].len() + usize::from(from == to);
        self.graph[from].push(Edge { to, cap, rev: bwd });
        self.graph[to].push(Edge {
            to: from,
            cap: 0.0,
            rev: fwd,
        });
        EdgeHandle {
            from,
            index: fwd,
            original_cap: cap,
        }
    }

    /// Computes the maximum flow from `source` to `sink`, mutating the
    /// residual capacities in place.
    ///
    /// # Panics
    /// Panics if `source == sink`.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> f64 {
        assert_ne!(source, sink, "source and sink must differ");
        let mut flow = 0.0;
        self.augmentations = 0;
        while self.bfs_levels(source, sink) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_augment(source, sink, f64::INFINITY);
                if pushed <= FLOW_EPS {
                    break;
                }
                flow += pushed;
                self.augmentations += 1;
            }
        }
        flow
    }

    /// Flow currently routed over an edge (original capacity minus
    /// residual).
    pub fn flow_on(&self, handle: &EdgeHandle) -> f64 {
        let e = &self.graph[handle.from][handle.index];
        (handle.original_cap - e.cap).max(0.0)
    }

    /// Restores an edge to its unsaturated state (forward residual =
    /// original capacity, reverse residual = 0), discarding any flow a
    /// previous [`max_flow`](Self::max_flow) routed over it. Resetting
    /// every edge returns the whole network to its pre-solve state
    /// without rebuilding it.
    pub fn reset_edge(&mut self, handle: &EdgeHandle) {
        let (to, rev) = {
            let e = &self.graph[handle.from][handle.index];
            (e.to, e.rev)
        };
        self.graph[handle.from][handle.index].cap = handle.original_cap;
        self.graph[to][rev].cap = 0.0;
    }

    /// Re-capacitates an edge in place (and clears any flow on it),
    /// updating the handle so [`flow_on`](Self::flow_on) stays correct.
    /// Together with [`reset_edge`](Self::reset_edge) this lets a probe
    /// loop reuse one network across many parameterized solves with no
    /// allocation.
    ///
    /// # Panics
    /// Panics on negative/non-finite capacity.
    pub fn set_capacity(&mut self, handle: &mut EdgeHandle, cap: f64) {
        assert!(
            cap.is_finite() && cap >= 0.0,
            "capacity must be finite and non-negative"
        );
        handle.original_cap = cap;
        self.reset_edge(handle);
    }

    fn bfs_levels(&mut self, source: usize, sink: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        // A monotone frontier: each node enters the queue at most once,
        // so a head cursor over the reused Vec suffices (no VecDeque,
        // no per-call allocation once capacity is established).
        self.queue.clear();
        self.level[source] = 0;
        self.queue.push(source);
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            for e in &self.graph[v] {
                if e.cap > FLOW_EPS && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[v] + 1;
                    self.queue.push(e.to);
                }
            }
        }
        self.level[sink] >= 0
    }

    fn dfs_augment(&mut self, v: usize, sink: usize, limit: f64) -> f64 {
        if v == sink {
            return limit;
        }
        while self.iter[v] < self.graph[v].len() {
            let i = self.iter[v];
            let (to, cap) = {
                let e = &self.graph[v][i];
                (e.to, e.cap)
            };
            if cap > FLOW_EPS && self.level[v] < self.level[to] {
                let pushed = self.dfs_augment(to, sink, limit.min(cap));
                if pushed > FLOW_EPS {
                    let rev = self.graph[v][i].rev;
                    self.graph[v][i].cap -= pushed;
                    self.graph[to][rev].cap += pushed;
                    return pushed;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }
}

/// Handle identifying an added edge, for flow inspection after a solve.
#[derive(Debug, Clone)]
pub struct EdgeHandle {
    from: usize,
    index: usize,
    original_cap: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 3.5);
        assert!((g.max_flow(0, 1) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn classic_diamond() {
        // s → a (3), s → b (2), a → t (2), b → t (3), a → b (1).
        let mut g = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        g.add_edge(s, a, 3.0);
        g.add_edge(s, b, 2.0);
        g.add_edge(a, t, 2.0);
        g.add_edge(b, t, 3.0);
        g.add_edge(a, b, 1.0);
        assert!((g.max_flow(s, t) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 4.0);
        assert_eq!(g.max_flow(0, 2), 0.0);
    }

    #[test]
    fn bottleneck_respected() {
        // Chain with decreasing capacities: min is the answer.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 0.25);
        g.add_edge(2, 3, 7.0);
        assert!((g.max_flow(0, 3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 2.0);
        assert!((g.max_flow(0, 1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn flow_on_reports_per_edge_flow() {
        let mut g = FlowNetwork::new(3);
        let e1 = g.add_edge(0, 1, 2.0);
        let e2 = g.add_edge(1, 2, 1.0);
        let total = g.max_flow(0, 2);
        assert!((total - 1.0).abs() < 1e-12);
        assert!((g.flow_on(&e1) - 1.0).abs() < 1e-12);
        assert!((g.flow_on(&e2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_capacities() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 0.3);
        g.add_edge(0, 2, 0.7);
        g.add_edge(1, 3, 0.5);
        g.add_edge(2, 3, 0.5);
        let f = g.max_flow(0, 3);
        assert!((f - 0.8).abs() < 1e-9, "flow {f}");
    }

    #[test]
    fn rerouting_through_residual_edges() {
        // Forces Dinic to push flow back along a residual edge:
        // the greedy path s→a→d→t must partly reroute via s→b→d, a→c→t.
        let mut g = FlowNetwork::new(6);
        let (s, a, b, c, d, t) = (0, 1, 2, 3, 4, 5);
        g.add_edge(s, a, 1.0);
        g.add_edge(s, b, 1.0);
        g.add_edge(a, c, 1.0);
        g.add_edge(a, d, 1.0);
        g.add_edge(b, d, 1.0);
        g.add_edge(c, t, 1.0);
        g.add_edge(d, t, 1.0);
        assert!((g.max_flow(s, t) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bipartite_unit_network_counts_matching() {
        // 3 left, 3 right, complete bipartite with unit caps → flow 3.
        let n = 8; // s=0, L=1..4, R=4..7, t=7
        let mut g = FlowNetwork::new(n);
        for l in 1..4 {
            g.add_edge(0, l, 1.0);
            for r in 4..7 {
                g.add_edge(l, r, 1.0);
            }
        }
        for r in 4..7 {
            g.add_edge(r, 7, 1.0);
        }
        assert!((g.max_flow(0, 7) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_source_sink_rejected() {
        let mut g = FlowNetwork::new(1);
        let _ = g.max_flow(0, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_rejected() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, -1.0);
    }

    #[test]
    fn reset_edges_makes_network_reusable() {
        let mut g = FlowNetwork::new(4);
        let handles = vec![
            g.add_edge(0, 1, 3.0),
            g.add_edge(0, 2, 2.0),
            g.add_edge(1, 3, 2.0),
            g.add_edge(2, 3, 3.0),
        ];
        let first = g.max_flow(0, 3);
        assert!((first - 4.0).abs() < 1e-12);
        // Saturated: immediately re-running finds no augmenting path.
        assert_eq!(g.max_flow(0, 3), 0.0);
        for h in &handles {
            g.reset_edge(h);
        }
        let again = g.max_flow(0, 3);
        assert!((again - 4.0).abs() < 1e-12, "after reset: {again}");
    }

    #[test]
    fn set_capacity_rescales_a_probe_network() {
        let mut g = FlowNetwork::new(3);
        let mut src = g.add_edge(0, 1, 1.0);
        let out = g.add_edge(1, 2, 10.0);
        assert!((g.max_flow(0, 2) - 1.0).abs() < 1e-12);
        g.set_capacity(&mut src, 4.0);
        g.reset_edge(&out);
        assert!((g.max_flow(0, 2) - 4.0).abs() < 1e-12);
        assert!((g.flow_on(&src) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn augmentation_counter_tracks_paths_per_call() {
        let mut g = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        let handles = vec![
            g.add_edge(s, a, 3.0),
            g.add_edge(s, b, 2.0),
            g.add_edge(a, t, 2.0),
            g.add_edge(b, t, 3.0),
            g.add_edge(a, b, 1.0),
        ];
        let _ = g.max_flow(s, t);
        let first = g.last_augmentations();
        assert!(first >= 2, "flow 5 over unit-free paths needs ≥ 2 pushes");
        // A saturated re-run finds no path and resets the count.
        assert_eq!(g.max_flow(s, t), 0.0);
        assert_eq!(g.last_augmentations(), 0);
        for h in &handles {
            g.reset_edge(h);
        }
        let _ = g.max_flow(s, t);
        assert_eq!(g.last_augmentations(), first, "deterministic re-solve");
    }

    #[test]
    fn self_loop_is_harmless() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 0, 5.0);
        g.add_edge(0, 1, 2.0);
        assert!((g.max_flow(0, 1) - 2.0).abs() < 1e-12);
    }
}
