//! # flowsched-solver
//!
//! Optimization substrate built from scratch for the paper's analyses:
//!
//! - [`simplex`]: a dense two-phase simplex LP solver, used to solve the
//!   paper's Linear Program (15) — maximize the cluster load `λ` subject
//!   to per-machine capacity and replication-transfer constraints.
//! - [`maxflow`]: Dinic's maximum-flow algorithm on real-valued
//!   capacities.
//! - [`matching`]: Hopcroft–Karp maximum bipartite matching, the engine of
//!   the exact offline `Fmax` solver for unit tasks (feasibility of
//!   scheduling all unit tasks within a flow budget `F` is a bipartite
//!   matching between tasks and machine×time-slot pairs).
//! - [`loadflow`]: the max-load question solved two independent ways
//!   (direct LP, and binary search on `λ` with max-flow feasibility);
//!   agreement of the two is enforced by property tests.

pub mod loadflow;
pub mod matching;
pub mod maxflow;
pub mod reference;
pub mod simplex;

pub use loadflow::{
    load_is_feasible, max_load_binary_search, max_load_lp, max_load_lp_with, MaxLoadProber,
};
pub use matching::{BipartiteMatcher, Matching};
pub use maxflow::FlowNetwork;
pub use simplex::{LinearProgram, LpOutcome, LpSolution, Relation, SimplexScratch};
