//! Hopcroft–Karp maximum bipartite matching.
//!
//! This is the feasibility engine of the exact offline `Fmax` solver for
//! unit-task instances: scheduling every unit task within flow budget `F`
//! is feasible iff a perfect matching exists between tasks and
//! `(machine, time-slot)` pairs with slot `∈ [rᵢ, rᵢ + F)` and machine
//! `∈ Mᵢ` (Section 6 of the paper notes the problem is polynomial).
//! Runs in `O(E·√V)`.

use flowsched_obs::{Counter, NoopRecorder, ProbeKind, Recorder};

/// Maximum bipartite matcher between `n_left` left vertices and `n_right`
/// right vertices.
///
/// ```
/// use flowsched_solver::matching::BipartiteMatcher;
///
/// let mut g = BipartiteMatcher::new(2, 2);
/// g.add_edge(0, 0);
/// g.add_edge(1, 0);
/// g.add_edge(1, 1);
/// let m = g.solve();
/// assert_eq!(m.size, 2); // the augmenting path flips L1 off R0
/// ```
#[derive(Debug, Clone)]
pub struct BipartiteMatcher {
    n_left: usize,
    n_right: usize,
    adj: Vec<Vec<usize>>,
}

/// The result of a matching computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// For each left vertex, the matched right vertex (or `None`).
    pub left_to_right: Vec<Option<usize>>,
    /// For each right vertex, the matched left vertex (or `None`).
    pub right_to_left: Vec<Option<usize>>,
    /// Number of matched pairs.
    pub size: usize,
}

const INF: u32 = u32::MAX;

impl BipartiteMatcher {
    /// Creates an empty bipartite graph.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        BipartiteMatcher {
            n_left,
            n_right,
            adj: vec![Vec::new(); n_left],
        }
    }

    /// Adds an edge `left — right`.
    ///
    /// # Panics
    /// Panics on out-of-range vertices.
    pub fn add_edge(&mut self, left: usize, right: usize) {
        assert!(left < self.n_left, "left vertex out of range");
        assert!(right < self.n_right, "right vertex out of range");
        self.adj[left].push(right);
    }

    /// Number of left vertices.
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right vertices.
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Computes a maximum matching (Hopcroft–Karp).
    pub fn solve(&self) -> Matching {
        self.solve_recorded(&mut NoopRecorder)
    }

    /// [`solve`](Self::solve) plus observability: emits one
    /// `MatchingSolve` probe carrying the number of Hopcroft–Karp BFS
    /// phases and the final matching size, and bumps the
    /// `matching_augmentations` counter once per augmenting path. With
    /// [`NoopRecorder`] this is exactly [`solve`](Self::solve).
    pub fn solve_recorded<R: Recorder>(&self, rec: &mut R) -> Matching {
        let mut match_l: Vec<Option<usize>> = vec![None; self.n_left];
        let mut match_r: Vec<Option<usize>> = vec![None; self.n_right];
        let mut dist = vec![INF; self.n_left];
        let mut phases = 0u64;
        let mut augmentations = 0u64;

        loop {
            // BFS from free left vertices, layering by alternating paths.
            let mut queue = std::collections::VecDeque::new();
            for l in 0..self.n_left {
                if match_l[l].is_none() {
                    dist[l] = 0;
                    queue.push_back(l);
                } else {
                    dist[l] = INF;
                }
            }
            let mut found_augmenting_layer = false;
            while let Some(l) = queue.pop_front() {
                for &r in &self.adj[l] {
                    match match_r[r] {
                        None => found_augmenting_layer = true,
                        Some(l2) => {
                            if dist[l2] == INF {
                                dist[l2] = dist[l] + 1;
                                queue.push_back(l2);
                            }
                        }
                    }
                }
            }
            if !found_augmenting_layer {
                break;
            }
            phases += 1;
            // DFS phase: find a maximal set of vertex-disjoint shortest
            // augmenting paths.
            for l in 0..self.n_left {
                if match_l[l].is_none()
                    && self.try_augment(l, &mut match_l, &mut match_r, &mut dist)
                {
                    augmentations += 1;
                }
            }
        }

        let size = match_l.iter().filter(|m| m.is_some()).count();
        if R::ENABLED {
            rec.probe(ProbeKind::MatchingSolve, phases, size as f64);
            rec.add(Counter::MatchingAugmentations, augmentations);
        }
        Matching {
            left_to_right: match_l,
            right_to_left: match_r,
            size,
        }
    }

    fn try_augment(
        &self,
        l: usize,
        match_l: &mut [Option<usize>],
        match_r: &mut [Option<usize>],
        dist: &mut [u32],
    ) -> bool {
        for &r in &self.adj[l] {
            let extend = match match_r[r] {
                None => true,
                Some(l2) => dist[l2] == dist[l] + 1 && self.try_augment(l2, match_l, match_r, dist),
            };
            if extend {
                match_l[l] = Some(r);
                match_r[r] = Some(l);
                return true;
            }
        }
        dist[l] = INF;
        false
    }
}

/// Hopcroft–Karp matcher that *persists its matching across solves* and
/// accepts new edges between solves.
///
/// Hopcroft–Karp is correct started from any valid partial matching, so
/// when the edge set only grows — the warm-start structure of the offline
/// `Fmax` budget search, where raising the flow budget adds time slots
/// and never removes them — each [`solve`](Self::solve) call merely
/// augments the carried matching instead of rebuilding it from empty.
/// Matched pairs stay matched (an augmenting path only rewires, never
/// unmatches), so the total number of augmenting paths over a whole
/// monotone search is at most `n_left`. BFS/DFS working buffers are
/// owned and reused; the solve loop performs no allocation once
/// capacities are established.
#[derive(Debug, Clone)]
pub struct IncrementalMatcher {
    n_left: usize,
    n_right: usize,
    adj: Vec<Vec<usize>>,
    match_l: Vec<Option<usize>>,
    match_r: Vec<Option<usize>>,
    dist: Vec<u32>,
    /// Reusable BFS frontier (each left vertex enters at most once per
    /// phase, so a head cursor over a Vec replaces a VecDeque).
    queue: Vec<usize>,
}

impl IncrementalMatcher {
    /// Creates an empty incremental matcher.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        IncrementalMatcher {
            n_left,
            n_right,
            adj: vec![Vec::new(); n_left],
            match_l: vec![None; n_left],
            match_r: vec![None; n_right],
            dist: vec![INF; n_left],
            queue: Vec::with_capacity(n_left),
        }
    }

    /// Adds an edge `left — right`. May be called between solves; the
    /// carried matching stays valid because edges are only ever added.
    ///
    /// # Panics
    /// Panics on out-of-range vertices.
    pub fn add_edge(&mut self, left: usize, right: usize) {
        assert!(left < self.n_left, "left vertex out of range");
        assert!(right < self.n_right, "right vertex out of range");
        self.adj[left].push(right);
    }

    /// Current matching size (valid after any number of solves).
    pub fn matching_size(&self) -> usize {
        self.match_l.iter().filter(|m| m.is_some()).count()
    }

    /// For each left vertex, the currently matched right vertex.
    pub fn left_to_right(&self) -> &[Option<usize>] {
        &self.match_l
    }

    /// Augments the carried matching to maximum over the current edge
    /// set (Hopcroft–Karp phases) and returns its size.
    pub fn solve(&mut self) -> usize {
        self.solve_recorded(&mut NoopRecorder)
    }

    /// [`solve`](Self::solve) plus observability, mirroring
    /// [`BipartiteMatcher::solve_recorded`]: one `MatchingSolve` probe
    /// per call (phases of *this* call only — a warm-started call that
    /// finds nothing to augment reports 0 phases) and one
    /// `matching_augmentations` bump per new augmenting path.
    pub fn solve_recorded<R: Recorder>(&mut self, rec: &mut R) -> usize {
        let mut phases = 0u64;
        let mut augmentations = 0u64;
        loop {
            // BFS from free left vertices, layering alternating paths.
            self.queue.clear();
            for l in 0..self.n_left {
                if self.match_l[l].is_none() {
                    self.dist[l] = 0;
                    self.queue.push(l);
                } else {
                    self.dist[l] = INF;
                }
            }
            let mut head = 0;
            let mut found_augmenting_layer = false;
            while head < self.queue.len() {
                let l = self.queue[head];
                head += 1;
                for &r in &self.adj[l] {
                    match self.match_r[r] {
                        None => found_augmenting_layer = true,
                        Some(l2) => {
                            if self.dist[l2] == INF {
                                self.dist[l2] = self.dist[l] + 1;
                                self.queue.push(l2);
                            }
                        }
                    }
                }
            }
            if !found_augmenting_layer {
                break;
            }
            phases += 1;
            // DFS phase: maximal set of vertex-disjoint shortest paths.
            for l in 0..self.n_left {
                if self.match_l[l].is_none() && self.try_augment(l) {
                    augmentations += 1;
                }
            }
        }
        let size = self.matching_size();
        if R::ENABLED {
            rec.probe(ProbeKind::MatchingSolve, phases, size as f64);
            rec.add(Counter::MatchingAugmentations, augmentations);
        }
        size
    }

    fn try_augment(&mut self, l: usize) -> bool {
        for idx in 0..self.adj[l].len() {
            let r = self.adj[l][idx];
            let extend = match self.match_r[r] {
                None => true,
                Some(l2) => self.dist[l2] == self.dist[l] + 1 && self.try_augment(l2),
            };
            if extend {
                self.match_l[l] = Some(r);
                self.match_r[r] = Some(l);
                return true;
            }
        }
        self.dist[l] = INF;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_complete_graph() {
        let mut g = BipartiteMatcher::new(3, 3);
        for l in 0..3 {
            for r in 0..3 {
                g.add_edge(l, r);
            }
        }
        let m = g.solve();
        assert_eq!(m.size, 3);
        // Consistency of the two maps.
        for (l, r) in m.left_to_right.iter().enumerate() {
            if let Some(r) = r {
                assert_eq!(m.right_to_left[*r], Some(l));
            }
        }
    }

    #[test]
    fn starved_left_vertex() {
        // Two left vertices competing for the same single right vertex.
        let mut g = BipartiteMatcher::new(2, 1);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        let m = g.solve();
        assert_eq!(m.size, 1);
    }

    #[test]
    fn requires_augmenting_path_flip() {
        // L0-{R0}, L1-{R0,R1}: greedy could match L1-R0 first; HK must
        // still reach size 2.
        let mut g = BipartiteMatcher::new(2, 2);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        g.add_edge(0, 0);
        let m = g.solve();
        assert_eq!(m.size, 2);
        assert_eq!(m.left_to_right[0], Some(0));
        assert_eq!(m.left_to_right[1], Some(1));
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteMatcher::new(4, 4);
        assert_eq!(g.solve().size, 0);
    }

    #[test]
    fn zero_vertices() {
        let g = BipartiteMatcher::new(0, 0);
        assert_eq!(g.solve().size, 0);
    }

    #[test]
    fn long_augmenting_chain() {
        // A path graph forcing a length-5 augmenting path:
        // L0-R0, L1-{R0,R1}, L2-{R1,R2}, L3-{R2,R3}.
        let mut g = BipartiteMatcher::new(4, 4);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        g.add_edge(2, 1);
        g.add_edge(2, 2);
        g.add_edge(3, 2);
        g.add_edge(3, 3);
        let m = g.solve();
        assert_eq!(m.size, 4);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matches_brute_force_on_random_graphs() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        use rand::SeedableRng;
        for _ in 0..200 {
            let nl = rng.random_range(1..=6);
            let nr = rng.random_range(1..=6);
            let mut g = BipartiteMatcher::new(nl, nr);
            let mut edges = vec![vec![false; nr]; nl];
            for l in 0..nl {
                for r in 0..nr {
                    if rng.random_bool(0.4) {
                        g.add_edge(l, r);
                        edges[l][r] = true;
                    }
                }
            }
            let hk = g.solve().size;
            let bf = brute_force(&edges, 0, &mut vec![false; nr]);
            assert_eq!(hk, bf, "edges: {edges:?}");
        }
    }

    /// Exponential exact matcher for cross-validation.
    fn brute_force(edges: &[Vec<bool>], l: usize, used: &mut Vec<bool>) -> usize {
        if l == edges.len() {
            return 0;
        }
        // Skip l.
        let mut best = brute_force(edges, l + 1, used);
        for r in 0..used.len() {
            if edges[l][r] && !used[r] {
                used[r] = true;
                best = best.max(1 + brute_force(edges, l + 1, used));
                used[r] = false;
            }
        }
        best
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let mut g = BipartiteMatcher::new(1, 1);
        g.add_edge(0, 5);
    }

    #[test]
    fn incremental_matcher_agrees_with_batch_solves_as_edges_arrive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(412);
        for _ in 0..50 {
            let nl = rng.random_range(1..=7);
            let nr = rng.random_range(1..=7);
            let mut inc = IncrementalMatcher::new(nl, nr);
            let mut batch = BipartiteMatcher::new(nl, nr);
            // Grow the edge set in waves; after each wave the warm-started
            // matching must have the same size as a from-scratch solve.
            for _ in 0..4 {
                for l in 0..nl {
                    for r in 0..nr {
                        if rng.random_bool(0.15) {
                            inc.add_edge(l, r);
                            batch.add_edge(l, r);
                        }
                    }
                }
                let warm = inc.solve();
                let cold = batch.solve().size;
                assert_eq!(warm, cold);
            }
        }
    }

    #[test]
    fn recorded_solves_match_plain_and_count_phases() {
        use flowsched_obs::{MemoryRecorder, ProbeKind};
        let mut g = BipartiteMatcher::new(4, 4);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        g.add_edge(2, 1);
        g.add_edge(2, 2);
        g.add_edge(3, 2);
        g.add_edge(3, 3);
        let mut rec = MemoryRecorder::with_defaults(0);
        let m = g.solve_recorded(&mut rec);
        assert_eq!(m, g.solve());
        let (count, phases, size, _) = rec.probe_stats(ProbeKind::MatchingSolve);
        assert_eq!(count, 1);
        assert!(phases >= 1);
        assert_eq!(size, m.size as f64);
        // A cold solve gains one matched pair per augmenting path.
        assert_eq!(
            rec.counters().get(Counter::MatchingAugmentations),
            m.size as u64
        );

        // Warm-started incremental solve with nothing new: zero phases.
        let mut inc = IncrementalMatcher::new(2, 2);
        inc.add_edge(0, 0);
        inc.add_edge(1, 1);
        assert_eq!(inc.solve(), 2);
        let mut rec = MemoryRecorder::with_defaults(0);
        assert_eq!(inc.solve_recorded(&mut rec), 2);
        let (count, phases, _, _) = rec.probe_stats(ProbeKind::MatchingSolve);
        assert_eq!((count, phases), (1, 0));
        assert_eq!(rec.counters().get(Counter::MatchingAugmentations), 0);
    }

    #[test]
    fn incremental_matching_is_monotone_and_consistent() {
        let mut inc = IncrementalMatcher::new(3, 3);
        inc.add_edge(0, 0);
        assert_eq!(inc.solve(), 1);
        let before = inc.matching_size();
        inc.add_edge(1, 0);
        inc.add_edge(1, 1);
        inc.add_edge(2, 1);
        inc.add_edge(2, 2);
        assert_eq!(inc.solve(), 3);
        assert!(inc.matching_size() >= before, "matched pairs never drop");
        // The two maps stay mutually consistent.
        for (l, r) in inc.left_to_right().iter().enumerate() {
            if let Some(r) = r {
                assert_eq!(inc.match_r[*r], Some(l));
            }
        }
    }
}
