//! Dense two-phase simplex LP solver.
//!
//! Solves `maximize c·x subject to A x {≤,=,≥} b, x ≥ 0`. Designed for the
//! small, dense programs of the paper's Section 7.2 (LP (15) has at most
//! `m·k + 1 ≤ 226` variables for `m = 15`), so a dense tableau is the
//! right tool: simple, cache-friendly, and easy to audit.
//!
//! Implementation notes:
//!
//! - Phase 1 minimizes the sum of artificial variables to find a basic
//!   feasible solution; phase 2 optimizes the real objective.
//! - Pivoting uses Dantzig's rule (most negative reduced cost) with an
//!   automatic switch to Bland's rule after a stall threshold, which
//!   guarantees termination on degenerate programs.
//! - The solver is validated against an independent max-flow formulation
//!   in [`crate::loadflow`]'s tests.

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aⱼxⱼ ≤ b`
    Le,
    /// `Σ aⱼxⱼ = b`
    Eq,
    /// `Σ aⱼxⱼ ≥ b`
    Ge,
}

/// A linear program `maximize c·x s.t. A x rel b, x ≥ 0`.
///
/// ```
/// use flowsched_solver::simplex::{LinearProgram, Relation};
///
/// // maximize 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18
/// let mut lp = LinearProgram::maximize(2, vec![3.0, 5.0]);
/// lp.constraint(vec![1.0, 0.0], Relation::Le, 4.0);
/// lp.constraint(vec![0.0, 2.0], Relation::Le, 12.0);
/// lp.constraint(vec![3.0, 2.0], Relation::Le, 18.0);
/// let sol = lp.solve().expect_optimal();
/// assert!((sol.objective - 36.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    n_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Vec<f64>>,
    relations: Vec<Relation>,
    rhs: Vec<f64>,
}

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// No point satisfies the constraints.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value `c·x*`.
    pub objective: f64,
    /// Optimal point `x*` (length = number of variables).
    pub x: Vec<f64>,
}

impl LpOutcome {
    /// Unwraps the optimal solution.
    ///
    /// # Panics
    /// Panics when the program was infeasible or unbounded.
    pub fn expect_optimal(self) -> LpSolution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected an optimal LP solution, got {other:?}"),
        }
    }
}

const EPS: f64 = 1e-9;
/// After this many consecutive degenerate (zero-improvement) pivots, the
/// solver switches from Dantzig's rule to Bland's anti-cycling rule.
const STALL_LIMIT: usize = 64;
/// Hard iteration cap — generous for the tiny programs this crate targets.
const MAX_ITERS: usize = 200_000;

impl LinearProgram {
    /// Creates a program over `n_vars` non-negative variables maximizing
    /// `objective · x`.
    ///
    /// # Panics
    /// Panics if the objective length differs from `n_vars`.
    pub fn maximize(n_vars: usize, objective: Vec<f64>) -> Self {
        assert_eq!(objective.len(), n_vars, "objective length must match variable count");
        LinearProgram { n_vars, objective, rows: Vec::new(), relations: Vec::new(), rhs: Vec::new() }
    }

    /// Creates a minimization program (internally negated).
    pub fn minimize(n_vars: usize, objective: Vec<f64>) -> Self {
        let negated = objective.into_iter().map(|c| -c).collect();
        LinearProgram::maximize(n_vars, negated)
    }

    /// Adds the constraint `coeffs · x rel rhs`.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != n_vars` or `rhs` is not finite.
    pub fn constraint(&mut self, coeffs: Vec<f64>, rel: Relation, rhs: f64) -> &mut Self {
        assert_eq!(coeffs.len(), self.n_vars, "constraint width must match variable count");
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        self.rows.push(coeffs);
        self.relations.push(rel);
        self.rhs.push(rhs);
        self
    }

    /// Adds a sparse constraint given `(var, coeff)` terms.
    pub fn constraint_sparse(
        &mut self,
        terms: &[(usize, f64)],
        rel: Relation,
        rhs: f64,
    ) -> &mut Self {
        let mut coeffs = vec![0.0; self.n_vars];
        for &(v, c) in terms {
            assert!(v < self.n_vars, "variable index out of range");
            coeffs[v] += c;
        }
        self.constraint(coeffs, rel, rhs)
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Solves the program.
    pub fn solve(&self) -> LpOutcome {
        Tableau::build(self).solve(&self.objective)
    }
}

/// Dense simplex tableau in canonical form: basic columns form an
/// identity, `rhs ≥ 0` throughout.
struct Tableau {
    /// `rows × (cols + 1)`; last column is the rhs.
    t: Vec<Vec<f64>>,
    /// Basic variable (column) of each row.
    basis: Vec<usize>,
    n_structural: usize,
    /// Columns `artificial_start..cols` are artificials.
    artificial_start: usize,
    cols: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Self {
        let m = lp.rows.len();
        // Count auxiliary columns: one slack per Le, one surplus per Ge,
        // one artificial per Ge/Eq (and per Le row with negative rhs that
        // flips to Ge after normalization — handled by normalizing first).
        let mut rows: Vec<Vec<f64>> = lp.rows.clone();
        let mut relations = lp.relations.clone();
        let mut rhs = lp.rhs.clone();
        for i in 0..m {
            if rhs[i] < 0.0 {
                for a in rows[i].iter_mut() {
                    *a = -*a;
                }
                rhs[i] = -rhs[i];
                relations[i] = match relations[i] {
                    Relation::Le => Relation::Ge,
                    Relation::Eq => Relation::Eq,
                    Relation::Ge => Relation::Le,
                };
            }
        }
        let n_slack = relations.iter().filter(|r| **r != Relation::Eq).count();
        let n_art = relations.iter().filter(|r| **r != Relation::Le).count();
        let n = lp.n_vars;
        let cols = n + n_slack + n_art;
        let artificial_start = n + n_slack;

        let mut t = vec![vec![0.0; cols + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = n;
        let mut next_art = artificial_start;
        for i in 0..m {
            t[i][..n].copy_from_slice(&rows[i]);
            t[i][cols] = rhs[i];
            match relations[i] {
                Relation::Le => {
                    t[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    t[i][next_slack] = -1.0;
                    next_slack += 1;
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }
        Tableau { t, basis, n_structural: n, artificial_start, cols }
    }

    /// Runs both phases; `objective` is the structural maximization
    /// objective.
    fn solve(mut self, objective: &[f64]) -> LpOutcome {
        // ---- Phase 1: minimize the sum of artificials. ----
        if self.artificial_start < self.cols {
            // Max form: maximize -(sum of artificials). Reduced-cost row:
            // start from cost and eliminate basic columns.
            let mut cost = vec![0.0; self.cols];
            for c in cost.iter_mut().skip(self.artificial_start) {
                *c = -1.0;
            }
            let mut z = self.reduced_row(&cost);
            match self.optimize(&mut z, self.cols) {
                PivotResult::Optimal => {}
                PivotResult::Unbounded => {
                    unreachable!("phase-1 objective is bounded above by 0")
                }
            }
            // z[cols] = −(phase-1 objective) = +(minimal artificial sum).
            let artificial_sum = z[self.cols];
            if artificial_sum > 1e-7 {
                return LpOutcome::Infeasible;
            }
            self.evict_artificials();
        }

        // ---- Phase 2: maximize the real objective. ----
        let mut z = self.phase2_reduced_row(objective);
        // Artificial columns are barred from entering in phase 2.
        match self.optimize(&mut z, self.artificial_start) {
            PivotResult::Optimal => {}
            PivotResult::Unbounded => return LpOutcome::Unbounded,
        }

        let mut x = vec![0.0; self.n_structural];
        for (row, &b) in self.basis.iter().enumerate() {
            if b < self.n_structural {
                x[b] = self.t[row][self.cols];
            }
        }
        let objective_value: f64 =
            x.iter().zip(objective).map(|(xi, ci)| xi * ci).sum();
        LpOutcome::Optimal(LpSolution { objective: objective_value, x })
    }

    /// Computes the reduced-cost row `z` for a (finite) cost vector:
    /// (indexed loops mirror the textbook tableau notation)
    /// `z[j] = c[j] − Σᵢ c[basis[i]]·T[i][j]`, with `z[cols]` holding the
    /// current objective value `Σᵢ c[basis[i]]·rhs[i]` (negated so pivots
    /// update it uniformly; we store `−value`).
    #[allow(clippy::needless_range_loop)]
    fn reduced_row(&self, cost: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; self.cols + 1];
        z[..self.cols].copy_from_slice(cost);
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = cost[b];
            if cb != 0.0 {
                for j in 0..=self.cols {
                    z[j] -= cb * self.t[i][j];
                }
            }
        }
        // Entry z[cols] now equals −(objective value of the current basis).
        z
    }

    /// Phase-2 reduced row: the structural objective with zero cost on
    /// auxiliaries, then the artificial columns barred from re-entering by
    /// forcing their reduced costs negative (any basic artificial sits at
    /// value 0 after a successful phase 1, contributing nothing).
    fn phase2_reduced_row(&self, objective: &[f64]) -> Vec<f64> {
        let mut finite = vec![0.0; self.cols];
        finite[..self.n_structural].copy_from_slice(objective);
        self.reduced_row(&finite)
    }

    /// Pivots until optimal or unbounded, maintaining the reduced row
    /// `z`. Only columns `< max_enter_col` may enter the basis.
    #[allow(clippy::needless_range_loop)]
    fn optimize(&mut self, z: &mut [f64], max_enter_col: usize) -> PivotResult {
        let mut stall = 0usize;
        for _ in 0..MAX_ITERS {
            let entering = if stall > STALL_LIMIT {
                // Bland: smallest-index improving column.
                (0..max_enter_col).find(|&j| z[j] > EPS)
            } else {
                // Dantzig: most improving column.
                let mut best = None;
                let mut best_val = EPS;
                for j in 0..max_enter_col {
                    if z[j] > best_val {
                        best_val = z[j];
                        best = Some(j);
                    }
                }
                best
            };
            let Some(e) = entering else {
                return PivotResult::Optimal;
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.t.len() {
                let a = self.t[i][e];
                if a > EPS {
                    let ratio = self.t[i][self.cols] / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(l) = leave else {
                return PivotResult::Unbounded;
            };
            if best_ratio < EPS {
                stall += 1;
            } else {
                stall = 0;
            }
            self.pivot(l, e, z);
        }
        panic!("simplex exceeded {MAX_ITERS} iterations — numerical trouble");
    }

    /// Performs the pivot: row `l` leaves, column `e` enters.
    fn pivot(&mut self, l: usize, e: usize, z: &mut [f64]) {
        let piv = self.t[l][e];
        debug_assert!(piv > EPS);
        let inv = 1.0 / piv;
        for v in self.t[l].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.t[l].clone();
        for (i, row) in self.t.iter_mut().enumerate() {
            if i != l {
                let factor = row[e];
                if factor != 0.0 {
                    for (v, p) in row.iter_mut().zip(&pivot_row) {
                        *v -= factor * p;
                    }
                    row[e] = 0.0; // exact zero for numerical hygiene
                }
            }
        }
        let factor = z[e];
        if factor != 0.0 {
            for (v, p) in z.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
            z[e] = 0.0;
        }
        self.basis[l] = e;
    }

    /// After phase 1, pivots basic artificial variables (at value 0) out
    /// of the basis where possible; rows that are entirely zero over
    /// non-artificial columns are redundant and harmless to keep.
    #[allow(clippy::needless_range_loop)]
    fn evict_artificials(&mut self) {
        let mut z_dummy = vec![0.0; self.cols + 1];
        for row in 0..self.t.len() {
            if self.basis[row] >= self.artificial_start {
                let target = (0..self.artificial_start)
                    .find(|&j| self.t[row][j].abs() > 1e-7);
                if let Some(j) = target {
                    // The basic artificial has value 0 (phase 1 succeeded),
                    // so this degenerate pivot keeps feasibility. Pivot
                    // element may be negative; that is fine for a zero row.
                    let piv = self.t[row][j];
                    let inv = 1.0 / piv;
                    for v in self.t[row].iter_mut() {
                        *v *= inv;
                    }
                    let pivot_row = self.t[row].clone();
                    for (i, r) in self.t.iter_mut().enumerate() {
                        if i != row {
                            let f = r[j];
                            if f != 0.0 {
                                for (v, p) in r.iter_mut().zip(&pivot_row) {
                                    *v -= f * p;
                                }
                                r[j] = 0.0;
                            }
                        }
                    }
                    self.basis[row] = j;
                }
            }
        }
        let _ = &mut z_dummy;
    }
}

enum PivotResult {
    Optimal,
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_two_variable_max() {
        // max 3x + 5y, x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z = 36.
        let mut lp = LinearProgram::maximize(2, vec![3.0, 5.0]);
        lp.constraint(vec![1.0, 0.0], Relation::Le, 4.0);
        lp.constraint(vec![0.0, 2.0], Relation::Le, 12.0);
        lp.constraint(vec![3.0, 2.0], Relation::Le, 18.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x ≤ 3 → z = 5.
        let mut lp = LinearProgram::maximize(2, vec![1.0, 1.0]);
        lp.constraint(vec![1.0, 1.0], Relation::Eq, 5.0);
        lp.constraint(vec![1.0, 0.0], Relation::Le, 3.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 5.0);
        assert_close(sol.x[0] + sol.x[1], 5.0);
    }

    #[test]
    fn ge_constraints_and_minimization() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → (4,0) cost 8? x=4,y=0: 8;
        // x=1,y=3: 11. Optimum 8 at (4, 0).
        let mut lp = LinearProgram::minimize(2, vec![2.0, 3.0]);
        lp.constraint(vec![1.0, 1.0], Relation::Ge, 4.0);
        lp.constraint(vec![1.0, 0.0], Relation::Ge, 1.0);
        let sol = lp.solve().expect_optimal();
        // maximize form returns the negated objective.
        assert_close(sol.objective, -8.0);
        assert_close(sol.x[0], 4.0);
        assert_close(sol.x[1], 0.0);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 2.
        let mut lp = LinearProgram::maximize(1, vec![1.0]);
        lp.constraint(vec![1.0], Relation::Le, 1.0);
        lp.constraint(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with only x ≥ 0 (no upper bound).
        let mut lp = LinearProgram::maximize(2, vec![1.0, 0.0]);
        lp.constraint(vec![0.0, 1.0], Relation::Le, 1.0);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // max x s.t. −x ≤ −2 (i.e. x ≥ 2), x ≤ 5 → 5.
        let mut lp = LinearProgram::maximize(1, vec![1.0]);
        lp.constraint(vec![-1.0], Relation::Le, -2.0);
        lp.constraint(vec![1.0], Relation::Le, 5.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn degenerate_program_terminates() {
        // A classic degenerate LP (multiple constraints active at the
        // optimum with zero rhs).
        let mut lp = LinearProgram::maximize(3, vec![0.75, -150.0, 0.02]);
        lp.constraint(vec![0.25, -60.0, -0.04], Relation::Le, 0.0);
        lp.constraint(vec![0.5, -90.0, -0.02], Relation::Le, 0.0);
        lp.constraint(vec![0.0, 0.0, 1.0], Relation::Le, 1.0);
        let out = lp.solve();
        // Beale's cycling example (scaled): optimum 0.05 at x = (0.04/0.8...).
        match out {
            LpOutcome::Optimal(s) => assert!(s.objective > 0.0),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn sparse_constraint_builder() {
        let mut lp = LinearProgram::maximize(3, vec![1.0, 1.0, 1.0]);
        lp.constraint_sparse(&[(0, 1.0), (2, 1.0)], Relation::Le, 2.0);
        lp.constraint_sparse(&[(1, 1.0)], Relation::Le, 3.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn redundant_equalities_handled() {
        // x + y = 2 stated twice (redundant rows leave a basic artificial
        // in a zero row after phase 1).
        let mut lp = LinearProgram::maximize(2, vec![1.0, 0.0]);
        lp.constraint(vec![1.0, 1.0], Relation::Eq, 2.0);
        lp.constraint(vec![1.0, 1.0], Relation::Eq, 2.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn transportation_toy() {
        // Two origins (supply 1, 2), two destinations (demand ≤ 2, ≤ 2),
        // maximize shipped amount. Variables x00,x01,x10,x11.
        let mut lp = LinearProgram::maximize(4, vec![1.0; 4]);
        lp.constraint(vec![1.0, 1.0, 0.0, 0.0], Relation::Le, 1.0);
        lp.constraint(vec![0.0, 0.0, 1.0, 1.0], Relation::Le, 2.0);
        lp.constraint(vec![1.0, 0.0, 1.0, 0.0], Relation::Le, 2.0);
        lp.constraint(vec![0.0, 1.0, 0.0, 1.0], Relation::Le, 2.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn solution_satisfies_constraints() {
        let mut lp = LinearProgram::maximize(3, vec![2.0, 1.0, 3.0]);
        lp.constraint(vec![1.0, 1.0, 1.0], Relation::Le, 10.0);
        lp.constraint(vec![1.0, 0.0, 2.0], Relation::Le, 8.0);
        lp.constraint(vec![0.0, 1.0, 0.0], Relation::Ge, 1.0);
        let sol = lp.solve().expect_optimal();
        let x = &sol.x;
        assert!(x.iter().all(|&v| v >= -1e-9));
        assert!(x[0] + x[1] + x[2] <= 10.0 + 1e-7);
        assert!(x[0] + 2.0 * x[2] <= 8.0 + 1e-7);
        assert!(x[1] >= 1.0 - 1e-7);
    }

    #[test]
    #[should_panic(expected = "objective length")]
    fn wrong_objective_len_rejected() {
        let _ = LinearProgram::maximize(2, vec![1.0]);
    }
}
