//! Dense two-phase simplex LP solver on a flat row-major tableau.
//!
//! Solves `maximize c·x subject to A x {≤,=,≥} b, x ≥ 0`. Designed for the
//! small, dense programs of the paper's Section 7.2 (LP (15) has at most
//! `m·k + 1 ≤ 226` variables for `m = 15`), so a dense tableau is the
//! right tool: simple, cache-friendly, and easy to audit.
//!
//! Implementation notes:
//!
//! - Phase 1 minimizes the sum of artificial variables to find a basic
//!   feasible solution; phase 2 optimizes the real objective.
//! - Pivoting uses Dantzig's rule (most negative reduced cost) with an
//!   automatic switch to Bland's rule after a stall threshold, which
//!   guarantees termination on degenerate programs.
//! - The tableau lives in one flat `rows × (cols+1)` arena inside a
//!   reusable [`SimplexScratch`]; pivots eliminate rows through
//!   `split_at_mut` borrows of that arena, so the pivot loop performs
//!   no heap allocation. A sweep job (Figure 10 solves ~63 000 LPs)
//!   creates one scratch and calls [`LinearProgram::solve_with`] per
//!   program; storage is recycled across solves.
//! - The solver is validated against an independent max-flow formulation
//!   in [`crate::loadflow`]'s tests and against the seed implementation
//!   (kept in [`crate::reference`]) by randomized cross-checks.

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aⱼxⱼ ≤ b`
    Le,
    /// `Σ aⱼxⱼ = b`
    Eq,
    /// `Σ aⱼxⱼ ≥ b`
    Ge,
}

/// A linear program `maximize c·x s.t. A x rel b, x ≥ 0`.
///
/// ```
/// use flowsched_solver::simplex::{LinearProgram, Relation};
///
/// // maximize 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18
/// let mut lp = LinearProgram::maximize(2, vec![3.0, 5.0]);
/// lp.constraint(vec![1.0, 0.0], Relation::Le, 4.0);
/// lp.constraint(vec![0.0, 2.0], Relation::Le, 12.0);
/// lp.constraint(vec![3.0, 2.0], Relation::Le, 18.0);
/// let sol = lp.solve().expect_optimal();
/// assert!((sol.objective - 36.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    pub(crate) n_vars: usize,
    pub(crate) objective: Vec<f64>,
    pub(crate) rows: Vec<Vec<f64>>,
    pub(crate) relations: Vec<Relation>,
    pub(crate) rhs: Vec<f64>,
}

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// No point satisfies the constraints.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value `c·x*`.
    pub objective: f64,
    /// Optimal point `x*` (length = number of variables).
    pub x: Vec<f64>,
}

impl LpOutcome {
    /// Unwraps the optimal solution.
    ///
    /// # Panics
    /// Panics when the program was infeasible or unbounded.
    pub fn expect_optimal(self) -> LpSolution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected an optimal LP solution, got {other:?}"),
        }
    }
}

const EPS: f64 = 1e-9;
/// After this many consecutive degenerate (zero-improvement) pivots, the
/// solver switches from Dantzig's rule to Bland's anti-cycling rule.
const STALL_LIMIT: usize = 64;
/// Hard iteration cap — generous for the tiny programs this crate targets.
const MAX_ITERS: usize = 200_000;

/// Reusable simplex working storage: the flat tableau arena, basis,
/// and reduced-cost row. One scratch serves any number of sequential
/// [`LinearProgram::solve_with`] calls; buffers grow to the largest
/// program seen and are then recycled without further allocation.
#[derive(Debug, Default)]
pub struct SimplexScratch {
    /// Flat `rows × stride` tableau, row-major; `stride = cols + 1`
    /// with the rhs in the last column of each row.
    t: Vec<f64>,
    /// Basic variable (column) of each row.
    basis: Vec<usize>,
    /// Reduced-cost row (`cols + 1` entries; last is −objective).
    z: Vec<f64>,
    /// Cost vector buffer for building reduced rows.
    cost: Vec<f64>,
    /// Pivots performed by the most recent solve (both phases; the
    /// post-phase-1 artificial eviction sweep is bookkeeping, not an
    /// optimizing pivot, and is not counted).
    pivots: u64,
}

impl SimplexScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        SimplexScratch::default()
    }

    /// Pivot count of the most recent solve through this scratch — the
    /// "iterations" payload of a `SimplexSolve` observability probe.
    pub fn last_pivots(&self) -> u64 {
        self.pivots
    }

    /// Clears and sizes the arena for direct tableau assembly: `rows`
    /// constraint rows over `n_structural + n_slack + n_art` columns plus
    /// a trailing rhs column per row. Returns the zeroed flat row arena
    /// (`rows × stride`, `stride = cols + 1`) and the basis array for the
    /// caller to fill exactly as [`LinearProgram::solve_with`]'s internal
    /// builder would (slacks then artificials assigned in row order);
    /// [`solve_assembled`] then runs the two-phase simplex over it.
    ///
    /// This exists for callers like [`crate::loadflow`] that know their
    /// program's structure and can skip materializing a dense
    /// [`LinearProgram`] on the hot path.
    pub(crate) fn assemble(
        &mut self,
        rows: usize,
        n_structural: usize,
        n_slack: usize,
        n_art: usize,
    ) -> (&mut [f64], &mut [usize]) {
        let stride = n_structural + n_slack + n_art + 1;
        self.t.clear();
        self.t.resize(rows * stride, 0.0);
        self.basis.clear();
        self.basis.resize(rows, usize::MAX);
        (&mut self.t, &mut self.basis)
    }
}

/// Solves a tableau assembled directly into `scratch` via
/// [`SimplexScratch::assemble`] (same dimensions, rhs non-negative,
/// basis filled). Behaviourally identical to building the equivalent
/// [`LinearProgram`] and calling [`LinearProgram::solve_with`]: given
/// the same tableau contents, the pivot sequence — and therefore the
/// outcome — is the same, which the cross-checks in
/// `tests/kernel_equivalence.rs` pin down.
pub(crate) fn solve_assembled(
    scratch: &mut SimplexScratch,
    rows: usize,
    n_structural: usize,
    n_slack: usize,
    n_art: usize,
    objective: &[f64],
) -> LpOutcome {
    let cols = n_structural + n_slack + n_art;
    debug_assert_eq!(scratch.t.len(), rows * (cols + 1));
    debug_assert_eq!(scratch.basis.len(), rows);
    let mut tab = Tableau {
        t: &mut scratch.t,
        basis: &mut scratch.basis,
        z: &mut scratch.z,
        cost: &mut scratch.cost,
        pivots: &mut scratch.pivots,
        rows,
        stride: cols + 1,
        n_structural,
        artificial_start: n_structural + n_slack,
        cols,
    };
    tab.solve(objective)
}

impl LinearProgram {
    /// Creates a program over `n_vars` non-negative variables maximizing
    /// `objective · x`.
    ///
    /// # Panics
    /// Panics if the objective length differs from `n_vars`.
    pub fn maximize(n_vars: usize, objective: Vec<f64>) -> Self {
        assert_eq!(
            objective.len(),
            n_vars,
            "objective length must match variable count"
        );
        LinearProgram {
            n_vars,
            objective,
            rows: Vec::new(),
            relations: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Creates a minimization program (internally negated).
    pub fn minimize(n_vars: usize, objective: Vec<f64>) -> Self {
        let negated = objective.into_iter().map(|c| -c).collect();
        LinearProgram::maximize(n_vars, negated)
    }

    /// Adds the constraint `coeffs · x rel rhs`.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != n_vars` or `rhs` is not finite.
    pub fn constraint(&mut self, coeffs: Vec<f64>, rel: Relation, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.n_vars,
            "constraint width must match variable count"
        );
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        self.rows.push(coeffs);
        self.relations.push(rel);
        self.rhs.push(rhs);
        self
    }

    /// Adds a sparse constraint given `(var, coeff)` terms.
    pub fn constraint_sparse(
        &mut self,
        terms: &[(usize, f64)],
        rel: Relation,
        rhs: f64,
    ) -> &mut Self {
        let mut coeffs = vec![0.0; self.n_vars];
        for &(v, c) in terms {
            assert!(v < self.n_vars, "variable index out of range");
            coeffs[v] += c;
        }
        self.constraint(coeffs, rel, rhs)
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Solves the program with one-shot scratch storage. Sweeps that
    /// solve many programs should hold a [`SimplexScratch`] and call
    /// [`solve_with`](Self::solve_with) instead.
    pub fn solve(&self) -> LpOutcome {
        self.solve_with(&mut SimplexScratch::new())
    }

    /// Solves the program using (and recycling) the caller's scratch
    /// storage. Behaviourally identical to [`solve`](Self::solve).
    pub fn solve_with(&self, scratch: &mut SimplexScratch) -> LpOutcome {
        let mut tab = Tableau::build(self, scratch);
        tab.solve(&self.objective)
    }

    /// The normalized (non-negative rhs) sense of constraint `i`:
    /// negating a row flips Le↔Ge and keeps Eq.
    fn normalized_relation(&self, i: usize) -> Relation {
        if self.rhs[i] < 0.0 {
            match self.relations[i] {
                Relation::Le => Relation::Ge,
                Relation::Eq => Relation::Eq,
                Relation::Ge => Relation::Le,
            }
        } else {
            self.relations[i]
        }
    }
}

/// Dense simplex tableau in canonical form over borrowed scratch
/// storage: basic columns form an identity, `rhs ≥ 0` throughout.
struct Tableau<'s> {
    /// Flat `rows × stride`; the last entry of each row is the rhs.
    t: &'s mut Vec<f64>,
    /// Basic variable (column) of each row.
    basis: &'s mut Vec<usize>,
    z: &'s mut Vec<f64>,
    cost: &'s mut Vec<f64>,
    /// Running pivot count, persisted in the scratch after the solve.
    pivots: &'s mut u64,
    rows: usize,
    stride: usize,
    n_structural: usize,
    /// Columns `artificial_start..cols` are artificials.
    artificial_start: usize,
    cols: usize,
}

impl<'s> Tableau<'s> {
    fn build(lp: &LinearProgram, scratch: &'s mut SimplexScratch) -> Self {
        let m = lp.rows.len();
        let n = lp.n_vars;
        // One slack/surplus per inequality, one artificial per Ge/Eq —
        // counted over the *normalized* senses (negative-rhs rows flip).
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        for i in 0..m {
            match lp.normalized_relation(i) {
                Relation::Le => n_slack += 1,
                Relation::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Relation::Eq => n_art += 1,
            }
        }
        let cols = n + n_slack + n_art;
        let stride = cols + 1;
        let artificial_start = n + n_slack;

        // Recycle the scratch buffers: clear + resize reuses capacity
        // after the first (largest) program has been seen.
        scratch.t.clear();
        scratch.t.resize(m * stride, 0.0);
        scratch.basis.clear();
        scratch.basis.resize(m, usize::MAX);

        let mut next_slack = n;
        let mut next_art = artificial_start;
        for i in 0..m {
            let row = &mut scratch.t[i * stride..(i + 1) * stride];
            let flip = lp.rhs[i] < 0.0;
            if flip {
                for (dst, &a) in row[..n].iter_mut().zip(&lp.rows[i]) {
                    *dst = -a;
                }
                row[cols] = -lp.rhs[i];
            } else {
                row[..n].copy_from_slice(&lp.rows[i]);
                row[cols] = lp.rhs[i];
            }
            match lp.normalized_relation(i) {
                Relation::Le => {
                    row[next_slack] = 1.0;
                    scratch.basis[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                    row[next_art] = 1.0;
                    scratch.basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    row[next_art] = 1.0;
                    scratch.basis[i] = next_art;
                    next_art += 1;
                }
            }
        }
        Tableau {
            t: &mut scratch.t,
            basis: &mut scratch.basis,
            z: &mut scratch.z,
            cost: &mut scratch.cost,
            pivots: &mut scratch.pivots,
            rows: m,
            stride,
            n_structural: n,
            artificial_start,
            cols,
        }
    }

    /// Runs both phases; `objective` is the structural maximization
    /// objective.
    fn solve(&mut self, objective: &[f64]) -> LpOutcome {
        *self.pivots = 0;
        // ---- Phase 1: minimize the sum of artificials. ----
        if self.artificial_start < self.cols {
            // Max form: maximize -(sum of artificials). Reduced-cost row:
            // start from cost and eliminate basic columns.
            self.cost.clear();
            self.cost.resize(self.cols, 0.0);
            for c in self.cost.iter_mut().skip(self.artificial_start) {
                *c = -1.0;
            }
            self.reduced_row();
            match self.optimize(self.cols) {
                PivotResult::Optimal => {}
                PivotResult::Unbounded => {
                    unreachable!("phase-1 objective is bounded above by 0")
                }
            }
            // z[cols] = −(phase-1 objective) = +(minimal artificial sum).
            let artificial_sum = self.z[self.cols];
            if artificial_sum > 1e-7 {
                return LpOutcome::Infeasible;
            }
            self.evict_artificials();
        }

        // ---- Phase 2: maximize the real objective. ----
        // Structural objective with zero cost on auxiliaries; artificial
        // columns are barred from entering below (any basic artificial
        // sits at value 0 after a successful phase 1).
        self.cost.clear();
        self.cost.resize(self.cols, 0.0);
        self.cost[..self.n_structural].copy_from_slice(objective);
        self.reduced_row();
        match self.optimize(self.artificial_start) {
            PivotResult::Optimal => {}
            PivotResult::Unbounded => return LpOutcome::Unbounded,
        }

        let mut x = vec![0.0; self.n_structural];
        for (row, &b) in self.basis.iter().enumerate() {
            if b < self.n_structural {
                x[b] = self.t[row * self.stride + self.cols];
            }
        }
        let objective_value: f64 = x.iter().zip(objective).map(|(xi, ci)| xi * ci).sum();
        LpOutcome::Optimal(LpSolution {
            objective: objective_value,
            x,
        })
    }

    /// Computes the reduced-cost row `z` from the scratch cost vector:
    /// `z[j] = c[j] − Σᵢ c[basis[i]]·T[i][j]`, with `z[cols]` holding
    /// `−(objective value of the current basis)` so pivots update it
    /// uniformly with the rest of the row.
    fn reduced_row(&mut self) {
        self.z.clear();
        self.z.resize(self.stride, 0.0);
        self.z[..self.cols].copy_from_slice(self.cost);
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = self.cost[b];
            if cb != 0.0 {
                let row = &self.t[i * self.stride..(i + 1) * self.stride];
                for (zj, tij) in self.z.iter_mut().zip(row) {
                    *zj -= cb * tij;
                }
            }
        }
    }

    /// Pivots until optimal or unbounded, maintaining the reduced row
    /// `z`. Only columns `< max_enter_col` may enter the basis.
    fn optimize(&mut self, max_enter_col: usize) -> PivotResult {
        let mut stall = 0usize;
        for _ in 0..MAX_ITERS {
            let entering = if stall > STALL_LIMIT {
                // Bland: smallest-index improving column.
                self.z[..max_enter_col].iter().position(|&zj| zj > EPS)
            } else {
                // Dantzig: most improving column.
                let mut best = None;
                let mut best_val = EPS;
                for (j, &zj) in self.z[..max_enter_col].iter().enumerate() {
                    if zj > best_val {
                        best_val = zj;
                        best = Some(j);
                    }
                }
                best
            };
            let Some(e) = entering else {
                return PivotResult::Optimal;
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.rows {
                let a = self.t[i * self.stride + e];
                if a > EPS {
                    let ratio = self.t[i * self.stride + self.cols] / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(l) = leave else {
                return PivotResult::Unbounded;
            };
            if best_ratio < EPS {
                stall += 1;
            } else {
                stall = 0;
            }
            self.pivot(l, e, max_enter_col);
        }
        panic!("simplex exceeded {MAX_ITERS} iterations — numerical trouble");
    }

    /// Performs the pivot: row `l` leaves, column `e` enters. The flat
    /// arena is split around the pivot row (`split_at_mut`), so every
    /// other row is eliminated against a live borrow of the pivot row —
    /// no clone, no allocation.
    ///
    /// Two exact work reductions on top of the textbook elimination,
    /// neither of which changes any tableau value that is ever read
    /// again (so pivot choices — and results — are untouched):
    ///
    /// - elimination is clipped to the nonzero span of the pivot row
    ///   (outside it `p == 0`, so `v -= factor·p` is a no-op);
    /// - columns `≥ active_cols` other than the rhs are left stale.
    ///   Phase 2 passes `active_cols = artificial_start`: artificial
    ///   columns are barred from entering and the solution is extracted
    ///   from `basis` + rhs alone, so they are dead after phase 1.
    fn pivot(&mut self, l: usize, e: usize, active_cols: usize) {
        *self.pivots += 1;
        let stride = self.stride;
        let piv = self.t[l * stride + e];
        debug_assert!(piv > EPS);
        debug_assert!(e < active_cols);
        let inv = 1.0 / piv;
        for v in &mut self.t[l * stride..(l + 1) * stride] {
            *v *= inv;
        }
        let (head, rest) = self.t.split_at_mut(l * stride);
        let (pivot_row, tail) = rest.split_at_mut(stride);
        // Nonzero span of the active part of the pivot row.
        let mut lo = 0usize;
        while lo < active_cols && pivot_row[lo] == 0.0 {
            lo += 1;
        }
        let mut hi = active_cols;
        while hi > lo && pivot_row[hi - 1] == 0.0 {
            hi -= 1;
        }
        let piv_span = &pivot_row[lo..hi];
        let piv_rhs = pivot_row[self.cols];
        for row in head
            .chunks_exact_mut(stride)
            .chain(tail.chunks_exact_mut(stride))
        {
            let factor = row[e];
            if factor != 0.0 {
                for (v, p) in row[lo..hi].iter_mut().zip(piv_span) {
                    *v -= factor * p;
                }
                row[self.cols] -= factor * piv_rhs;
                row[e] = 0.0; // exact zero for numerical hygiene
            }
        }
        let factor = self.z[e];
        if factor != 0.0 {
            for (v, p) in self.z[lo..hi].iter_mut().zip(piv_span) {
                *v -= factor * p;
            }
            self.z[self.cols] -= factor * piv_rhs;
            self.z[e] = 0.0;
        }
        self.basis[l] = e;
    }

    /// After phase 1, pivots basic artificial variables (at value 0) out
    /// of the basis where possible; rows that are entirely zero over
    /// non-artificial columns are redundant and harmless to keep.
    fn evict_artificials(&mut self) {
        let stride = self.stride;
        for row in 0..self.rows {
            if self.basis[row] >= self.artificial_start {
                let target =
                    (0..self.artificial_start).find(|&j| self.t[row * stride + j].abs() > 1e-7);
                if let Some(j) = target {
                    // The basic artificial has value 0 (phase 1 succeeded),
                    // so this degenerate pivot keeps feasibility. Pivot
                    // element may be negative; that is fine for a zero row.
                    let piv = self.t[row * stride + j];
                    let inv = 1.0 / piv;
                    for v in &mut self.t[row * stride..(row + 1) * stride] {
                        *v *= inv;
                    }
                    let (head, rest) = self.t.split_at_mut(row * stride);
                    let (pivot_row, tail) = rest.split_at_mut(stride);
                    for r in head
                        .chunks_exact_mut(stride)
                        .chain(tail.chunks_exact_mut(stride))
                    {
                        let f = r[j];
                        if f != 0.0 {
                            for (v, p) in r.iter_mut().zip(&*pivot_row) {
                                *v -= f * p;
                            }
                            r[j] = 0.0;
                        }
                    }
                    self.basis[row] = j;
                }
            }
        }
    }
}

enum PivotResult {
    Optimal,
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_two_variable_max() {
        // max 3x + 5y, x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z = 36.
        let mut lp = LinearProgram::maximize(2, vec![3.0, 5.0]);
        lp.constraint(vec![1.0, 0.0], Relation::Le, 4.0);
        lp.constraint(vec![0.0, 2.0], Relation::Le, 12.0);
        lp.constraint(vec![3.0, 2.0], Relation::Le, 18.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x ≤ 3 → z = 5.
        let mut lp = LinearProgram::maximize(2, vec![1.0, 1.0]);
        lp.constraint(vec![1.0, 1.0], Relation::Eq, 5.0);
        lp.constraint(vec![1.0, 0.0], Relation::Le, 3.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 5.0);
        assert_close(sol.x[0] + sol.x[1], 5.0);
    }

    #[test]
    fn ge_constraints_and_minimization() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → (4,0) cost 8? x=4,y=0: 8;
        // x=1,y=3: 11. Optimum 8 at (4, 0).
        let mut lp = LinearProgram::minimize(2, vec![2.0, 3.0]);
        lp.constraint(vec![1.0, 1.0], Relation::Ge, 4.0);
        lp.constraint(vec![1.0, 0.0], Relation::Ge, 1.0);
        let sol = lp.solve().expect_optimal();
        // maximize form returns the negated objective.
        assert_close(sol.objective, -8.0);
        assert_close(sol.x[0], 4.0);
        assert_close(sol.x[1], 0.0);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 2.
        let mut lp = LinearProgram::maximize(1, vec![1.0]);
        lp.constraint(vec![1.0], Relation::Le, 1.0);
        lp.constraint(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with only x ≥ 0 (no upper bound).
        let mut lp = LinearProgram::maximize(2, vec![1.0, 0.0]);
        lp.constraint(vec![0.0, 1.0], Relation::Le, 1.0);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // max x s.t. −x ≤ −2 (i.e. x ≥ 2), x ≤ 5 → 5.
        let mut lp = LinearProgram::maximize(1, vec![1.0]);
        lp.constraint(vec![-1.0], Relation::Le, -2.0);
        lp.constraint(vec![1.0], Relation::Le, 5.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn degenerate_program_terminates() {
        // A classic degenerate LP (multiple constraints active at the
        // optimum with zero rhs).
        let mut lp = LinearProgram::maximize(3, vec![0.75, -150.0, 0.02]);
        lp.constraint(vec![0.25, -60.0, -0.04], Relation::Le, 0.0);
        lp.constraint(vec![0.5, -90.0, -0.02], Relation::Le, 0.0);
        lp.constraint(vec![0.0, 0.0, 1.0], Relation::Le, 1.0);
        let out = lp.solve();
        // Beale's cycling example (scaled): optimum 0.05 at x = (0.04/0.8...).
        match out {
            LpOutcome::Optimal(s) => assert!(s.objective > 0.0),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn sparse_constraint_builder() {
        let mut lp = LinearProgram::maximize(3, vec![1.0, 1.0, 1.0]);
        lp.constraint_sparse(&[(0, 1.0), (2, 1.0)], Relation::Le, 2.0);
        lp.constraint_sparse(&[(1, 1.0)], Relation::Le, 3.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn redundant_equalities_handled() {
        // x + y = 2 stated twice (redundant rows leave a basic artificial
        // in a zero row after phase 1).
        let mut lp = LinearProgram::maximize(2, vec![1.0, 0.0]);
        lp.constraint(vec![1.0, 1.0], Relation::Eq, 2.0);
        lp.constraint(vec![1.0, 1.0], Relation::Eq, 2.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn transportation_toy() {
        // Two origins (supply 1, 2), two destinations (demand ≤ 2, ≤ 2),
        // maximize shipped amount. Variables x00,x01,x10,x11.
        let mut lp = LinearProgram::maximize(4, vec![1.0; 4]);
        lp.constraint(vec![1.0, 1.0, 0.0, 0.0], Relation::Le, 1.0);
        lp.constraint(vec![0.0, 0.0, 1.0, 1.0], Relation::Le, 2.0);
        lp.constraint(vec![1.0, 0.0, 1.0, 0.0], Relation::Le, 2.0);
        lp.constraint(vec![0.0, 1.0, 0.0, 1.0], Relation::Le, 2.0);
        let sol = lp.solve().expect_optimal();
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn solution_satisfies_constraints() {
        let mut lp = LinearProgram::maximize(3, vec![2.0, 1.0, 3.0]);
        lp.constraint(vec![1.0, 1.0, 1.0], Relation::Le, 10.0);
        lp.constraint(vec![1.0, 0.0, 2.0], Relation::Le, 8.0);
        lp.constraint(vec![0.0, 1.0, 0.0], Relation::Ge, 1.0);
        let sol = lp.solve().expect_optimal();
        let x = &sol.x;
        assert!(x.iter().all(|&v| v >= -1e-9));
        assert!(x[0] + x[1] + x[2] <= 10.0 + 1e-7);
        assert!(x[0] + 2.0 * x[2] <= 8.0 + 1e-7);
        assert!(x[1] >= 1.0 - 1e-7);
    }

    #[test]
    fn scratch_is_reusable_across_programs_of_different_shapes() {
        let mut scratch = SimplexScratch::new();

        // Big program first, then smaller ones: buffers shrink logically
        // (resize) without reallocating, and results stay exact.
        let mut big = LinearProgram::maximize(4, vec![1.0; 4]);
        big.constraint(vec![1.0, 1.0, 0.0, 0.0], Relation::Le, 1.0);
        big.constraint(vec![0.0, 0.0, 1.0, 1.0], Relation::Le, 2.0);
        big.constraint(vec![1.0, 0.0, 1.0, 0.0], Relation::Le, 2.0);
        big.constraint(vec![0.0, 1.0, 0.0, 1.0], Relation::Le, 2.0);
        assert_close(big.solve_with(&mut scratch).expect_optimal().objective, 3.0);

        let mut small = LinearProgram::maximize(2, vec![3.0, 5.0]);
        small.constraint(vec![1.0, 0.0], Relation::Le, 4.0);
        small.constraint(vec![0.0, 2.0], Relation::Le, 12.0);
        small.constraint(vec![3.0, 2.0], Relation::Le, 18.0);
        assert_close(
            small.solve_with(&mut scratch).expect_optimal().objective,
            36.0,
        );

        let mut infeasible = LinearProgram::maximize(1, vec![1.0]);
        infeasible.constraint(vec![1.0], Relation::Le, 1.0);
        infeasible.constraint(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(infeasible.solve_with(&mut scratch), LpOutcome::Infeasible);

        // And again after an infeasible solve: state fully recycles.
        assert_close(
            small.solve_with(&mut scratch).expect_optimal().objective,
            36.0,
        );
    }

    #[test]
    fn repeated_solves_with_shared_scratch_match_fresh_solves() {
        let mut scratch = SimplexScratch::new();
        for seed in 0..40u64 {
            // Small pseudo-random LPs from a hand-rolled LCG (keep this
            // test dependency-free).
            let mut state = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as i64 % 9 - 4) as f64
            };
            let n = 2 + (seed as usize % 3);
            let mut lp = LinearProgram::maximize(n, (0..n).map(|_| next().abs() + 0.5).collect());
            for _ in 0..(1 + seed as usize % 4) {
                let coeffs: Vec<f64> = (0..n).map(|_| next()).collect();
                lp.constraint(coeffs, Relation::Le, next().abs() + 1.0);
            }
            assert_eq!(lp.solve(), lp.solve_with(&mut scratch));
        }
    }

    #[test]
    fn pivot_counter_resets_per_solve_and_counts_work() {
        let mut scratch = SimplexScratch::new();
        let mut lp = LinearProgram::maximize(2, vec![3.0, 5.0]);
        lp.constraint(vec![1.0, 0.0], Relation::Le, 4.0);
        lp.constraint(vec![0.0, 2.0], Relation::Le, 12.0);
        lp.constraint(vec![3.0, 2.0], Relation::Le, 18.0);
        let _ = lp.solve_with(&mut scratch);
        let first = scratch.last_pivots();
        assert!(first > 0, "a non-trivial solve must pivot at least once");
        // The counter resets per solve: same program → same count.
        let _ = lp.solve_with(&mut scratch);
        assert_eq!(scratch.last_pivots(), first);
        // An already-optimal origin (maximize −x ≤ …) pivots zero times.
        let mut trivial = LinearProgram::maximize(1, vec![-1.0]);
        trivial.constraint(vec![1.0], Relation::Le, 1.0);
        let _ = trivial.solve_with(&mut scratch);
        assert_eq!(scratch.last_pivots(), 0);
    }

    #[test]
    #[should_panic(expected = "objective length")]
    fn wrong_objective_len_rejected() {
        let _ = LinearProgram::maximize(2, vec![1.0]);
    }
}
