//! Theoretical maximum cluster load (the paper's LP (15), Section 7.2).
//!
//! Machine `Mⱼ` *originates* a fraction `P(Eⱼ)` of the request stream
//! (it owns the keys those requests target). Replication lets a request
//! for `Mⱼ`'s keys be served by any machine in the replication set
//! `I_k(j)`. The *maximum load* is the largest arrival rate `λ` such
//! that the work can be spread with no machine exceeding rate 1:
//!
//! ```text
//! maximize    λ
//! subject to  Σᵢ aᵢⱼ = λ·P(Eⱼ)        for every origin j     (15b)
//!             Σⱼ aᵢⱼ ≤ 1              for every machine i    (15c)
//!             aᵢⱼ = 0 when Mᵢ ∉ I_k(j)                       (15d)
//!             aᵢⱼ ≥ 0, λ ≥ 0                                 (15e,f)
//! ```
//!
//! Two independent solvers are provided: a direct simplex solve of
//! LP (15), and a binary search on `λ` whose feasibility oracle is a
//! max-flow computation (`λ` is feasible iff the transportation network
//! source→origins→machines→sink admits a flow saturating the sources).
//! The two must agree, which the tests enforce — a strong guard on both
//! implementations.

use crate::maxflow::{EdgeHandle, FlowNetwork};
use crate::simplex::{LinearProgram, LpOutcome, Relation, SimplexScratch};
use flowsched_obs::{NoopRecorder, ProbeKind, Recorder};

/// Validates the common inputs: `weights[j]` is origin `j`'s popularity
/// (non-negative, not all zero), `allowed[j]` lists the machines able to
/// serve origin `j` (non-empty, indices `< weights.len()`).
fn validate(weights: &[f64], allowed: &[Vec<usize>]) {
    let m = weights.len();
    assert!(m > 0, "need at least one machine");
    assert_eq!(allowed.len(), m, "one replication set per origin machine");
    assert!(
        weights.iter().all(|&w| w.is_finite() && w >= 0.0),
        "weights must be finite and non-negative"
    );
    assert!(
        weights.iter().sum::<f64>() > 0.0,
        "total weight must be positive"
    );
    for (j, a) in allowed.iter().enumerate() {
        assert!(!a.is_empty(), "origin {j} has an empty replication set");
        assert!(
            a.iter().all(|&i| i < m),
            "replication set of origin {j} out of range"
        );
    }
}

/// Solves LP (15) directly with the simplex solver. Returns the maximum
/// feasible `λ`.
///
/// ```
/// use flowsched_solver::loadflow::max_load_lp;
///
/// // Two machines; machine 0 owns 70% of the popularity. Without
/// // replication λ·0.7 ≤ 1 caps λ at ≈1.43; with full replication the
/// // cluster reaches λ = 2 (100% of its capacity).
/// let weights = [0.7, 0.3];
/// let unreplicated = vec![vec![0], vec![1]];
/// let full = vec![vec![0, 1], vec![0, 1]];
/// assert!((max_load_lp(&weights, &unreplicated) - 1.0 / 0.7).abs() < 1e-6);
/// assert!((max_load_lp(&weights, &full) - 2.0).abs() < 1e-6);
/// ```
///
/// # Panics
/// Panics on invalid inputs (see module docs) — the LP itself is always
/// feasible (`λ = 0`) and bounded (`λ ≤ m / Σw`).
pub fn max_load_lp(weights: &[f64], allowed: &[Vec<usize>]) -> f64 {
    max_load_lp_with(weights, allowed, &mut SimplexScratch::new())
}

/// [`max_load_lp`] with caller-provided simplex working storage. Sweep
/// jobs that solve LP (15) for many `(weights, allowed)` configurations
/// (Figure 10 solves one per grid cell × permutation) hold a single
/// [`SimplexScratch`] so tableau storage is recycled across solves.
///
/// LP (15)'s structure is known up front, so the tableau is assembled
/// straight into the scratch arena — identical (including row, column,
/// and auxiliary-variable order, hence pivot-for-pivot) to what solving
/// [`build_load_lp`]'s program would produce, but without materializing
/// the dense `LinearProgram` rows on the hot path. The generic program
/// object still exists for validation and the seed baseline
/// ([`crate::reference::max_load_lp`] solves exactly that).
pub fn max_load_lp_with(
    weights: &[f64],
    allowed: &[Vec<usize>],
    scratch: &mut SimplexScratch,
) -> f64 {
    validate(weights, allowed);
    let m = weights.len();
    let n_pairs: usize = allowed.iter().map(|a| a.len()).sum();
    // Variable layout: x[0] = λ, then one a_{ij} per allowed (origin j,
    // machine i) pair, ordered by origin (matches `build_load_lp`).
    let n_vars = 1 + n_pairs;

    // Row layout: the m equality rows (15b) first, then one ≤ row (15c)
    // per *served* machine in ascending machine order (machines no origin
    // may use get no row, exactly as `build_load_lp` skips them).
    let mut le_row = vec![usize::MAX; m];
    for a in allowed {
        for &i in a {
            le_row[i] = 0; // mark served; row ids assigned below
        }
    }
    let mut n_served = 0usize;
    for r in le_row.iter_mut() {
        if *r == 0 {
            *r = m + n_served;
            n_served += 1;
        }
    }
    let rows = m + n_served;
    let (n_slack, n_art) = (n_served, m);

    let (t, basis) = scratch.assemble(rows, n_vars, n_slack, n_art);
    let cols = n_vars + n_slack + n_art;
    let stride = cols + 1;
    let artificial_start = n_vars + n_slack;

    // (15b): Σᵢ a_ij − λ·P(E_j) = 0; artificial basic, rhs 0.
    let mut var = 1usize;
    for j in 0..m {
        let row = &mut t[j * stride..(j + 1) * stride];
        row[0] = -weights[j];
        for _ in 0..allowed[j].len() {
            row[var] = 1.0;
            var += 1;
        }
        row[artificial_start + j] = 1.0;
        basis[j] = artificial_start + j;
    }
    // (15c): Σⱼ a_ij ≤ 1; slack basic (slacks in row order), rhs 1.
    for r in m..rows {
        let row = &mut t[r * stride..(r + 1) * stride];
        row[n_vars + (r - m)] = 1.0;
        row[cols] = 1.0;
        basis[r] = n_vars + (r - m);
    }
    let mut var = 1usize;
    for a in allowed {
        for &i in a {
            t[le_row[i] * stride + var] += 1.0;
            var += 1;
        }
    }

    let mut objective = vec![0.0; n_vars];
    objective[0] = 1.0;
    match crate::simplex::solve_assembled(scratch, rows, n_vars, n_slack, n_art, &objective) {
        LpOutcome::Optimal(sol) => sol.objective.max(0.0),
        other => unreachable!("LP (15) is always feasible and bounded, got {other:?}"),
    }
}

/// [`max_load_lp_with`] plus observability: emits one `SimplexSolve`
/// probe per call carrying the solve's pivot count and the optimal `λ*`.
/// With [`NoopRecorder`] this is exactly [`max_load_lp_with`].
pub fn max_load_lp_recorded<R: Recorder>(
    weights: &[f64],
    allowed: &[Vec<usize>],
    scratch: &mut SimplexScratch,
    rec: &mut R,
) -> f64 {
    let lambda = max_load_lp_with(weights, allowed, scratch);
    if R::ENABLED {
        rec.probe(ProbeKind::SimplexSolve, scratch.last_pivots(), lambda);
    }
    lambda
}

/// Builds LP (15) for a configuration (shared by the optimized path and
/// the seed baseline in [`crate::reference`], which differ only in how
/// they *solve* the program).
///
/// # Panics
/// Panics on invalid inputs (see module docs).
pub fn build_load_lp(weights: &[f64], allowed: &[Vec<usize>]) -> LinearProgram {
    validate(weights, allowed);
    let m = weights.len();

    // Variable layout: x[0] = λ, then one a_{ij} per allowed (origin j,
    // machine i) pair, ordered by origin.
    let mut pair_index: Vec<Vec<usize>> = Vec::with_capacity(m); // per origin: var ids
    let mut n_vars = 1usize;
    for a in allowed {
        let ids: Vec<usize> = (0..a.len()).map(|t| n_vars + t).collect();
        n_vars += a.len();
        pair_index.push(ids);
    }

    let mut objective = vec![0.0; n_vars];
    objective[0] = 1.0;
    let mut lp = LinearProgram::maximize(n_vars, objective);

    // (15b): Σᵢ a_ij − λ·P(E_j) = 0.
    for j in 0..m {
        let mut terms: Vec<(usize, f64)> = vec![(0, -weights[j])];
        for &v in &pair_index[j] {
            terms.push((v, 1.0));
        }
        lp.constraint_sparse(&terms, Relation::Eq, 0.0);
    }
    // (15c): Σⱼ a_ij ≤ 1 for each machine i.
    for i in 0..m {
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for j in 0..m {
            for (t, &srv) in allowed[j].iter().enumerate() {
                if srv == i {
                    terms.push((pair_index[j][t], 1.0));
                }
            }
        }
        if !terms.is_empty() {
            lp.constraint_sparse(&terms, Relation::Le, 1.0);
        }
    }

    lp
}

/// Persistent max-flow feasibility oracle for one `(weights, allowed)`
/// configuration, probed at many arrival rates `λ`.
///
/// The transportation network source → origin → machine → sink is built
/// once. Only the `m` source edges carry `λ`-dependent capacities
/// (`λ·P(Eⱼ)`); origin→machine edges get the `λ`-independent bound `m`
/// (flow through origin `j` is already capped by its source edge, and
/// total service rate by `m`), so a probe just rescales the sources,
/// resets residuals in place, and re-runs Dinic — no allocation in the
/// probe loop. A binary search to tolerance `1e-9` runs ~60 probes on
/// one graph where the seed implementation built ~60 graphs.
#[derive(Debug, Clone)]
pub struct MaxLoadProber {
    weights: Vec<f64>,
    net: FlowNetwork,
    /// One per origin: source → origin, capacity `λ·P(Eⱼ)` per probe.
    source_edges: Vec<EdgeHandle>,
    /// λ-independent edges (origin→machine, machine→sink), reset per probe.
    fixed_edges: Vec<EdgeHandle>,
    sink: usize,
}

impl MaxLoadProber {
    /// Builds the probe network for a configuration.
    ///
    /// # Panics
    /// Panics on invalid inputs (see module docs).
    pub fn new(weights: &[f64], allowed: &[Vec<usize>]) -> Self {
        validate(weights, allowed);
        let m = weights.len();
        // Nodes: 0 = source, 1..=m origins, m+1..=2m machines, 2m+1 sink.
        let sink = 2 * m + 1;
        let origin = |j: usize| 1 + j;
        let machine = |i: usize| 1 + m + i;
        let mut net = FlowNetwork::new(2 * m + 2);
        let mut source_edges = Vec::with_capacity(m);
        let mut fixed_edges = Vec::new();
        for (j, a) in allowed.iter().enumerate() {
            source_edges.push(net.add_edge(0, origin(j), 0.0));
            for &i in a {
                fixed_edges.push(net.add_edge(origin(j), machine(i), m as f64));
            }
        }
        for i in 0..m {
            fixed_edges.push(net.add_edge(machine(i), sink, 1.0));
        }
        MaxLoadProber {
            weights: weights.to_vec(),
            net,
            source_edges,
            fixed_edges,
            sink,
        }
    }

    /// Can arrival rate `lambda` be served? (Max flow saturates the
    /// sources.) Reuses the persistent network; callable any number of
    /// times in any order of `lambda`.
    pub fn is_feasible(&mut self, lambda: f64) -> bool {
        self.is_feasible_recorded(lambda, &mut NoopRecorder)
    }

    /// [`is_feasible`](Self::is_feasible) plus observability: emits one
    /// `LoadFeasibility` probe per call carrying the Dinic augmentation
    /// count and the probed `λ`. With [`NoopRecorder`] this is exactly
    /// [`is_feasible`](Self::is_feasible).
    pub fn is_feasible_recorded<R: Recorder>(&mut self, lambda: f64, rec: &mut R) -> bool {
        assert!(lambda.is_finite() && lambda >= 0.0);
        for h in &self.fixed_edges {
            self.net.reset_edge(h);
        }
        let mut demand = 0.0;
        for (j, h) in self.source_edges.iter_mut().enumerate() {
            let cap = lambda * self.weights[j];
            demand += cap;
            self.net.set_capacity(h, cap);
        }
        let flow = self.net.max_flow(0, self.sink);
        if R::ENABLED {
            rec.probe(
                ProbeKind::LoadFeasibility,
                self.net.last_augmentations(),
                lambda,
            );
        }
        flow >= demand - 1e-9 * (1.0 + demand)
    }

    /// Maximum feasible load by binary search on `λ` to absolute
    /// tolerance `tol`, probing this persistent network.
    ///
    /// # Panics
    /// Panics unless `tol > 0`.
    pub fn max_load(&mut self, tol: f64) -> f64 {
        self.max_load_recorded(tol, &mut NoopRecorder)
    }

    /// [`max_load`](Self::max_load) with every binary-search probe
    /// traced through `rec` (one `LoadFeasibility` probe per feasibility
    /// query — a ~60-probe search emits ~60 events). With
    /// [`NoopRecorder`] this is exactly [`max_load`](Self::max_load).
    ///
    /// # Panics
    /// Panics unless `tol > 0`.
    pub fn max_load_recorded<R: Recorder>(&mut self, tol: f64, rec: &mut R) -> f64 {
        assert!(tol > 0.0, "tolerance must be positive");
        let total: f64 = self.weights.iter().sum();
        // Upper bound: even with full replication, m machines of rate 1
        // serve at most rate m, so λ·total ≤ m.
        let mut hi = self.weights.len() as f64 / total;
        let mut lo = 0.0;
        if self.is_feasible_recorded(hi, rec) {
            return hi;
        }
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            if self.is_feasible_recorded(mid, rec) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Max-flow feasibility oracle: can arrival rate `lambda` be served?
///
/// One-shot convenience over [`MaxLoadProber`]; probing many `λ` on a
/// fixed configuration should construct the prober once instead.
pub fn load_is_feasible(weights: &[f64], allowed: &[Vec<usize>], lambda: f64) -> bool {
    MaxLoadProber::new(weights, allowed).is_feasible(lambda)
}

/// Computes the maximum feasible load by binary search on `λ` with the
/// max-flow oracle, to absolute tolerance `tol`. Builds one persistent
/// [`MaxLoadProber`] and rescales it across all probes.
pub fn max_load_binary_search(weights: &[f64], allowed: &[Vec<usize>], tol: f64) -> f64 {
    MaxLoadProber::new(weights, allowed).max_load(tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Disjoint intervals of size k over m machines (paper Section 7.2).
    fn disjoint_sets(m: usize, k: usize) -> Vec<Vec<usize>> {
        (0..m)
            .map(|u| {
                let base = k * (u / k);
                (base..(base + k).min(m)).collect()
            })
            .collect()
    }

    /// Overlapping ring intervals of size k (paper Section 7.2).
    fn ring_sets(m: usize, k: usize) -> Vec<Vec<usize>> {
        (0..m)
            .map(|u| (0..k).map(|o| (u + o) % m).collect())
            .collect()
    }

    #[test]
    fn no_replication_is_bounded_by_max_weight() {
        // k=1: λ·max(w) ≤ 1 → λ* = 1/max(w).
        let w = [0.5, 0.3, 0.2];
        let allowed: Vec<Vec<usize>> = (0..3).map(|j| vec![j]).collect();
        let lp = max_load_lp(&w, &allowed);
        assert!((lp - 2.0).abs() < 1e-6, "expected 2.0, got {lp}");
        let bs = max_load_binary_search(&w, &allowed, 1e-9);
        assert!((bs - 2.0).abs() < 1e-6);
    }

    #[test]
    fn full_replication_reaches_m_over_total() {
        // Uniform weights summing to 1 on m=4, full sets → λ* = 4.
        let w = [0.25; 4];
        let allowed: Vec<Vec<usize>> = (0..4).map(|_| (0..4).collect()).collect();
        let lp = max_load_lp(&w, &allowed);
        assert!((lp - 4.0).abs() < 1e-6, "got {lp}");
        assert!((max_load_binary_search(&w, &allowed, 1e-9) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_weights_make_strategies_equal() {
        // Paper: "replication strategies exhibit no difference on the
        // tolerable load when no bias is introduced (s = 0)".
        let m = 6;
        let w = vec![1.0 / m as f64; m];
        for k in 1..=m {
            let over = max_load_lp(&w, &ring_sets(m, k));
            let disj = max_load_lp(&w, &disjoint_sets(m, k));
            assert!((over - disj).abs() < 1e-6, "k={k}: {over} vs {disj}");
            assert!(
                (over - m as f64).abs() < 1e-6,
                "uniform load should hit 100%"
            );
        }
    }

    #[test]
    fn overlapping_dominates_disjoint_under_bias() {
        // Zipf-ish decreasing weights; overlapping rings shift load off the
        // hot prefix in a chain, disjoint blocks cannot.
        let w = [0.40, 0.25, 0.15, 0.10, 0.06, 0.04];
        for k in 2..6 {
            let over = max_load_lp(&w, &ring_sets(6, k));
            let disj = max_load_lp(&w, &disjoint_sets(6, k));
            assert!(
                over >= disj - 1e-9,
                "k={k}: overlapping {over} should be ≥ disjoint {disj}"
            );
        }
        // Strict for k=2: hot block {0,1} carries 0.65 with capacity 2.
        let over = max_load_lp(&w, &ring_sets(6, 2));
        let disj = max_load_lp(&w, &disjoint_sets(6, 2));
        assert!(over > disj + 0.1, "{over} vs {disj}");
    }

    #[test]
    fn disjoint_load_matches_block_formula() {
        // For disjoint blocks, λ* = min over blocks of |block| / w(block).
        let w = [0.4, 0.2, 0.2, 0.2];
        let allowed = disjoint_sets(4, 2);
        let expected = (2.0 / 0.6_f64).min(2.0 / 0.4);
        let lp = max_load_lp(&w, &allowed);
        assert!((lp - expected).abs() < 1e-6, "{lp} vs {expected}");
    }

    #[test]
    fn lp_and_flow_agree_on_many_configurations() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        for trial in 0..40 {
            let m = rng.random_range(2..=8);
            let k = rng.random_range(1..=m);
            let weights: Vec<f64> = (0..m).map(|_| rng.random_range(0.01..1.0)).collect();
            let allowed = if trial % 2 == 0 {
                ring_sets(m, k)
            } else {
                disjoint_sets(m, k)
            };
            let lp = max_load_lp(&weights, &allowed);
            let bs = max_load_binary_search(&weights, &allowed, 1e-9);
            assert!(
                (lp - bs).abs() < 1e-5,
                "trial {trial}: m={m} k={k} lp={lp} bs={bs} w={weights:?}"
            );
        }
    }

    #[test]
    fn feasibility_is_monotone_in_lambda() {
        let w = [0.5, 0.5];
        let allowed = vec![vec![0, 1], vec![0, 1]];
        assert!(load_is_feasible(&w, &allowed, 1.0));
        assert!(load_is_feasible(&w, &allowed, 2.0));
        assert!(!load_is_feasible(&w, &allowed, 2.5));
    }

    #[test]
    fn persistent_prober_matches_one_shot_probes_in_any_order() {
        let w = [0.4, 0.25, 0.15, 0.10, 0.06, 0.04];
        let allowed = ring_sets(6, 3);
        let mut prober = MaxLoadProber::new(&w, &allowed);
        // Deliberately non-monotone probe order: residual state from a
        // saturating probe must not leak into the next one.
        for lambda in [3.0, 0.5, 6.0, 2.0, 6.0, 0.0, 4.5] {
            assert_eq!(
                prober.is_feasible(lambda),
                load_is_feasible(&w, &allowed, lambda),
                "λ = {lambda}"
            );
        }
        // And the searches agree.
        let persistent = prober.max_load(1e-9);
        let one_shot = max_load_binary_search(&w, &allowed, 1e-9);
        assert!((persistent - one_shot).abs() < 1e-9);
    }

    #[test]
    fn shared_lp_scratch_matches_fresh_solves() {
        let mut scratch = crate::simplex::SimplexScratch::new();
        let w = [0.40, 0.25, 0.15, 0.10, 0.06, 0.04];
        for k in 1..=6 {
            let fresh = max_load_lp(&w, &ring_sets(6, k));
            let reused = max_load_lp_with(&w, &ring_sets(6, k), &mut scratch);
            assert_eq!(fresh, reused, "k={k}");
            let fresh_d = max_load_lp(&w, &disjoint_sets(6, k));
            let reused_d = max_load_lp_with(&w, &disjoint_sets(6, k), &mut scratch);
            assert_eq!(fresh_d, reused_d, "k={k} disjoint");
        }
    }

    #[test]
    fn recorded_solvers_match_plain_and_emit_probes() {
        use flowsched_obs::{Counter, MemoryRecorder, ProbeKind};
        let w = [0.40, 0.25, 0.15, 0.10, 0.06, 0.04];
        let allowed = ring_sets(6, 3);

        let mut scratch = SimplexScratch::new();
        let mut rec = MemoryRecorder::with_defaults(6);
        let lp = max_load_lp_recorded(&w, &allowed, &mut scratch, &mut rec);
        assert_eq!(lp, max_load_lp(&w, &allowed));
        let (count, iters, last, _) = rec.probe_stats(ProbeKind::SimplexSolve);
        assert_eq!(count, 1);
        assert_eq!(iters, scratch.last_pivots());
        assert_eq!(last, lp);
        assert_eq!(rec.counters().get(Counter::SimplexPivots), iters);

        // Biased disjoint blocks: λ* = 2/0.65 < m, so the search cannot
        // early-return at the capacity bound and must actually bisect.
        let allowed = disjoint_sets(6, 2);
        let mut rec = MemoryRecorder::with_defaults(6);
        let mut prober = MaxLoadProber::new(&w, &allowed);
        let bs = prober.max_load_recorded(1e-9, &mut rec);
        assert_eq!(bs, max_load_binary_search(&w, &allowed, 1e-9));
        let probes = rec.counters().get(Counter::LoadProbes);
        assert!(probes >= 30, "a 1e-9 search probes ~60 times, saw {probes}");
        let (count, iters, _, _) = rec.probe_stats(ProbeKind::LoadFeasibility);
        assert_eq!(count, probes);
        assert_eq!(rec.counters().get(Counter::FlowAugmentations), iters);
        assert!(iters > 0, "feasible probes push at least one path");
    }

    #[test]
    fn zero_weight_origin_is_fine() {
        let w = [1.0, 0.0];
        let allowed = vec![vec![0], vec![1]];
        let lp = max_load_lp(&w, &allowed);
        assert!((lp - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty replication set")]
    fn empty_allowed_rejected() {
        let _ = max_load_lp(&[1.0], &[vec![]]);
    }

    #[test]
    #[should_panic(expected = "total weight")]
    fn all_zero_weights_rejected() {
        let _ = max_load_lp(&[0.0, 0.0], &[vec![0], vec![1]]);
    }
}
