//! Seed ("reference") solver kernels, kept verbatim for validation.
//!
//! The optimized kernels in [`crate::simplex`] and [`crate::loadflow`]
//! replaced these implementations for speed: the reference simplex
//! stores the tableau as `Vec<Vec<f64>>` and clones the pivot row on
//! every pivot; the reference feasibility oracle rebuilds a fresh
//! [`FlowNetwork`] for every `λ` probe. They remain here as the
//! *semantic baseline*:
//!
//! - randomized property tests (see `tests/solver_cross_validation.rs`
//!   and `tests/kernel_equivalence.rs`) assert the optimized kernels
//!   agree with these to 1e-6 across hundreds of configurations,
//!   including scratch-reuse and warm-start paths;
//! - the benchmark suite measures these to establish the pre-optimization
//!   baseline that `BENCH_PR1.json` speedups are judged against.
//!
//! Nothing in the hot paths calls into this module.

use crate::maxflow::FlowNetwork;
use crate::simplex::{LinearProgram, LpOutcome, LpSolution, Relation};

const EPS: f64 = 1e-9;
const STALL_LIMIT: usize = 64;
const MAX_ITERS: usize = 200_000;

/// Solves `lp` with the seed row-of-rows simplex. Semantically identical
/// to [`LinearProgram::solve`] (same pivot rules, tolerances, and
/// tie-breaking), differing only in storage layout and allocation
/// behaviour.
pub fn solve_lp(lp: &LinearProgram) -> LpOutcome {
    Tableau::build(lp).solve(&lp.objective)
}

/// Dense simplex tableau in canonical form (seed layout: one heap row
/// per constraint).
struct Tableau {
    /// `t[i]` is constraint row i over `cols + 1` entries (last = rhs).
    t: Vec<Vec<f64>>,
    basis: Vec<usize>,
    n_structural: usize,
    artificial_start: usize,
    cols: usize,
}

enum PivotResult {
    Optimal,
    Unbounded,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Self {
        let m = lp.rows.len();
        let n = lp.n_vars;

        // Normalize to non-negative rhs (negating flips Le↔Ge).
        let mut rows = lp.rows.clone();
        let mut relations = lp.relations.clone();
        let mut rhs = lp.rhs.clone();
        for i in 0..m {
            if rhs[i] < 0.0 {
                for a in &mut rows[i] {
                    *a = -*a;
                }
                rhs[i] = -rhs[i];
                relations[i] = match relations[i] {
                    Relation::Le => Relation::Ge,
                    Relation::Eq => Relation::Eq,
                    Relation::Ge => Relation::Le,
                };
            }
        }

        let n_slack = relations
            .iter()
            .filter(|r| !matches!(r, Relation::Eq))
            .count();
        let n_art = relations
            .iter()
            .filter(|r| !matches!(r, Relation::Le))
            .count();
        let cols = n + n_slack + n_art;
        let artificial_start = n + n_slack;

        let mut t = vec![vec![0.0; cols + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = n;
        let mut next_art = artificial_start;
        for i in 0..m {
            t[i][..n].copy_from_slice(&rows[i]);
            t[i][cols] = rhs[i];
            match relations[i] {
                Relation::Le => {
                    t[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    t[i][next_slack] = -1.0;
                    next_slack += 1;
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }
        Tableau {
            t,
            basis,
            n_structural: n,
            artificial_start,
            cols,
        }
    }

    fn solve(&mut self, objective: &[f64]) -> LpOutcome {
        // Phase 1: drive artificials to zero.
        if self.artificial_start < self.cols {
            let mut cost = vec![0.0; self.cols];
            for c in cost.iter_mut().skip(self.artificial_start) {
                *c = -1.0;
            }
            let mut z = self.reduced_row(&cost);
            match self.optimize(&mut z, self.cols) {
                PivotResult::Optimal => {}
                PivotResult::Unbounded => {
                    unreachable!("phase-1 objective is bounded above by 0")
                }
            }
            let artificial_sum = z[self.cols];
            if artificial_sum > 1e-7 {
                return LpOutcome::Infeasible;
            }
            self.evict_artificials();
        }

        // Phase 2: the real objective, artificials barred from entering.
        let mut cost = vec![0.0; self.cols];
        cost[..self.n_structural].copy_from_slice(objective);
        let mut z = self.reduced_row(&cost);
        match self.optimize(&mut z, self.artificial_start) {
            PivotResult::Optimal => {}
            PivotResult::Unbounded => return LpOutcome::Unbounded,
        }

        let mut x = vec![0.0; self.n_structural];
        for (row, &b) in self.basis.iter().enumerate() {
            if b < self.n_structural {
                x[b] = self.t[row][self.cols];
            }
        }
        let objective_value: f64 = x.iter().zip(objective).map(|(xi, ci)| xi * ci).sum();
        LpOutcome::Optimal(LpSolution {
            objective: objective_value,
            x,
        })
    }

    fn reduced_row(&self, cost: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; self.cols + 1];
        z[..self.cols].copy_from_slice(cost);
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = cost[b];
            if cb != 0.0 {
                for (zj, tij) in z.iter_mut().zip(&self.t[i]) {
                    *zj -= cb * tij;
                }
            }
        }
        z
    }

    fn optimize(&mut self, z: &mut [f64], max_enter_col: usize) -> PivotResult {
        let mut stall = 0usize;
        for _ in 0..MAX_ITERS {
            let entering = if stall > STALL_LIMIT {
                z[..max_enter_col].iter().position(|&zj| zj > EPS)
            } else {
                let mut best = None;
                let mut best_val = EPS;
                for (j, &zj) in z[..max_enter_col].iter().enumerate() {
                    if zj > best_val {
                        best_val = zj;
                        best = Some(j);
                    }
                }
                best
            };
            let Some(e) = entering else {
                return PivotResult::Optimal;
            };

            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.t.len() {
                let a = self.t[i][e];
                if a > EPS {
                    let ratio = self.t[i][self.cols] / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(l) = leave else {
                return PivotResult::Unbounded;
            };
            if best_ratio < EPS {
                stall += 1;
            } else {
                stall = 0;
            }
            self.pivot(l, e, z);
        }
        panic!("simplex exceeded {MAX_ITERS} iterations — numerical trouble");
    }

    /// Seed pivot: clones the pivot row before eliminating, one heap
    /// allocation per pivot (the cost the flat-arena kernel removes).
    fn pivot(&mut self, l: usize, e: usize, z: &mut [f64]) {
        let piv = self.t[l][e];
        let inv = 1.0 / piv;
        for v in &mut self.t[l] {
            *v *= inv;
        }
        let pivot_row = self.t[l].clone();
        for (i, row) in self.t.iter_mut().enumerate() {
            if i != l {
                let factor = row[e];
                if factor != 0.0 {
                    for (v, p) in row.iter_mut().zip(&pivot_row) {
                        *v -= factor * p;
                    }
                    row[e] = 0.0;
                }
            }
        }
        let factor = z[e];
        if factor != 0.0 {
            for (v, p) in z.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
            z[e] = 0.0;
        }
        self.basis[l] = e;
    }

    fn evict_artificials(&mut self) {
        for row in 0..self.t.len() {
            if self.basis[row] >= self.artificial_start {
                let target = (0..self.artificial_start).find(|&j| self.t[row][j].abs() > 1e-7);
                if let Some(j) = target {
                    let piv = self.t[row][j];
                    let inv = 1.0 / piv;
                    for v in &mut self.t[row] {
                        *v *= inv;
                    }
                    let pivot_row = self.t[row].clone();
                    for (i, r) in self.t.iter_mut().enumerate() {
                        if i != row {
                            let f = r[j];
                            if f != 0.0 {
                                for (v, p) in r.iter_mut().zip(&pivot_row) {
                                    *v -= f * p;
                                }
                                r[j] = 0.0;
                            }
                        }
                    }
                    self.basis[row] = j;
                }
            }
        }
    }
}

/// LP (15) solved with the seed simplex: same program construction as
/// [`crate::loadflow::max_load_lp`], seed storage layout underneath.
pub fn max_load_lp(weights: &[f64], allowed: &[Vec<usize>]) -> f64 {
    let lp = crate::loadflow::build_load_lp(weights, allowed);
    match solve_lp(&lp) {
        LpOutcome::Optimal(sol) => sol.objective.max(0.0),
        other => unreachable!("LP (15) is always feasible and bounded, got {other:?}"),
    }
}

/// Seed feasibility oracle: rebuilds the transportation network from
/// scratch for every probe (the per-probe allocation the persistent
/// prober in [`crate::loadflow`] removes). Semantics are identical to
/// [`crate::loadflow::load_is_feasible`].
pub fn load_is_feasible(weights: &[f64], allowed: &[Vec<usize>], lambda: f64) -> bool {
    assert!(lambda.is_finite() && lambda >= 0.0);
    let m = weights.len();
    let source = 0;
    let sink = 2 * m + 1;
    let origin = |j: usize| 1 + j;
    let machine = |i: usize| 1 + m + i;
    let mut g = FlowNetwork::new(2 * m + 2);
    let mut demand = 0.0;
    for j in 0..m {
        let cap = lambda * weights[j];
        demand += cap;
        g.add_edge(source, origin(j), cap);
        for &i in &allowed[j] {
            g.add_edge(origin(j), machine(i), cap);
        }
    }
    for i in 0..m {
        g.add_edge(machine(i), sink, 1.0);
    }
    let flow = g.max_flow(source, sink);
    flow >= demand - 1e-9 * (1.0 + demand)
}

/// Seed binary search on `λ` over the per-probe-rebuild oracle.
pub fn max_load_binary_search(weights: &[f64], allowed: &[Vec<usize>], tol: f64) -> f64 {
    assert!(tol > 0.0, "tolerance must be positive");
    let total: f64 = weights.iter().sum();
    let mut hi = weights.len() as f64 / total;
    let mut lo = 0.0;
    if load_is_feasible(weights, allowed, hi) {
        return hi;
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if load_is_feasible(weights, allowed, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::Relation;

    #[test]
    fn reference_simplex_solves_textbook_program() {
        let mut lp = LinearProgram::maximize(2, vec![3.0, 5.0]);
        lp.constraint(vec![1.0, 0.0], Relation::Le, 4.0);
        lp.constraint(vec![0.0, 2.0], Relation::Le, 12.0);
        lp.constraint(vec![3.0, 2.0], Relation::Le, 18.0);
        let sol = solve_lp(&lp).expect_optimal();
        assert!((sol.objective - 36.0).abs() < 1e-9);
    }

    #[test]
    fn reference_simplex_detects_infeasible_and_unbounded() {
        let mut inf = LinearProgram::maximize(1, vec![1.0]);
        inf.constraint(vec![1.0], Relation::Le, 1.0);
        inf.constraint(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(solve_lp(&inf), LpOutcome::Infeasible);

        let mut unb = LinearProgram::maximize(2, vec![1.0, 0.0]);
        unb.constraint(vec![0.0, 1.0], Relation::Le, 1.0);
        assert_eq!(solve_lp(&unb), LpOutcome::Unbounded);
    }

    #[test]
    fn reference_binary_search_matches_known_load() {
        let w = [0.5, 0.3, 0.2];
        let allowed: Vec<Vec<usize>> = (0..3).map(|j| vec![j]).collect();
        let bs = max_load_binary_search(&w, &allowed, 1e-9);
        assert!((bs - 2.0).abs() < 1e-6);
    }
}
