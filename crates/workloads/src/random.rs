//! Seeded random workload generation over every structure class, for
//! property tests and benchmarks — as materialized instances
//! ([`random_instance`]) or as a constant-memory Poisson arrival stream
//! ([`PoissonStream`]).

use flowsched_core::compact::ProcSetRef;
use flowsched_core::instance::{Instance, InstanceBuilder};
use flowsched_core::procset::ProcSet;
use flowsched_core::shard::ShardPlan;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::structure::StructureReport;
use flowsched_core::task::Task;
use flowsched_stats::poisson::PoissonProcess;
use flowsched_stats::rng::derive_rng;
use rand::rngs::StdRng;
use rand::Rng;

/// Which processing-set structure the generated family follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// Every task may run anywhere (`P | online-rᵢ | Fmax`).
    Unrestricted,
    /// Contiguous intervals of size `k` at random positions.
    IntervalFixed(usize),
    /// Ring (wrap-around) intervals of size `k` at random positions — the
    /// key-value-store replication shape.
    RingFixed(usize),
    /// The cluster split into fixed disjoint blocks of size `k`; each task
    /// picks one block.
    DisjointBlocks(usize),
    /// A random chain `S₁ ⊆ S₂ ⊆ … ⊆ M`; each task picks a chain element.
    InclusiveChain,
    /// Inclusive prefixes `{0, …, len−1}` with a fresh random `len` per
    /// task — the canonical inclusive shape without the `O(m²)` chain
    /// skeleton, so it scales to very large `m` (and wide sets stream as
    /// O(1) [`ProcSetRef::Prefix`] views).
    InclusivePrefix,
    /// A random laminar family; each task picks one node.
    NestedLaminar,
    /// Arbitrary random non-empty subsets.
    General,
}

/// Configuration for [`random_instance`].
#[derive(Debug, Clone)]
pub struct RandomInstanceConfig {
    /// Machine count.
    pub m: usize,
    /// Task count.
    pub n: usize,
    /// Structure family.
    pub structure: StructureKind,
    /// Releases are uniform integers in `[0, release_span]`.
    pub release_span: u64,
    /// `true` → all processing times are 1; otherwise uniform in
    /// `{0.25, 0.5, …, ptime_steps/4}`.
    pub unit: bool,
    /// Number of quarter-unit steps for non-unit processing times.
    pub ptime_steps: u32,
}

impl RandomInstanceConfig {
    /// A reasonable default: unit tasks, releases over `2n/m` steps
    /// (load ≈ m/2).
    pub fn unit_tasks(m: usize, n: usize, structure: StructureKind) -> Self {
        RandomInstanceConfig {
            m,
            n,
            structure,
            release_span: (2 * n as u64 / m.max(1) as u64).max(1),
            unit: true,
            ptime_steps: 4,
        }
    }
}

/// Generates a random instance; identical `(config, seed)` pairs produce
/// identical instances.
///
/// # Panics
/// Panics on degenerate configurations (zero machines/tasks, `k` out of
/// `1..=m`).
pub fn random_instance(config: &RandomInstanceConfig, seed: u64) -> Instance {
    assert!(config.m >= 1 && config.n >= 1, "need machines and tasks");
    let m = config.m;
    let mut rng = derive_rng(seed, 0x5EED);
    let chain = structure_skeleton(config.structure, m, &mut rng);

    let mut b = InstanceBuilder::new(m);
    for _ in 0..config.n {
        let release = rng.random_range(0..=config.release_span) as f64;
        let ptime = if config.unit {
            1.0
        } else {
            0.25 * rng.random_range(1..=config.ptime_steps.max(1)) as f64
        };
        let set = sample_set(config.structure, m, &chain, &mut rng);
        b.push(Task::new(release, ptime), set);
    }
    b.build()
        .expect("random instances are valid by construction")
}

/// Pre-builds the structured family skeleton a [`StructureKind`] samples
/// from (the chain / laminar family); empty for memoryless kinds.
fn structure_skeleton(structure: StructureKind, m: usize, rng: &mut impl Rng) -> Vec<ProcSet> {
    match structure {
        StructureKind::InclusiveChain => {
            // Random nested prefix sizes 1 ≤ s₁ < s₂ < … ≤ m over a random
            // machine order.
            let order = flowsched_stats::permutation::random_permutation(m, rng);
            let mut sizes: Vec<usize> = (1..=m).collect();
            // Keep a random subset of sizes, always including m.
            sizes.retain(|&s| s == m || rng.random_bool(0.5));
            sizes
                .iter()
                .map(|&s| ProcSet::new(order[..s].to_vec()))
                .collect()
        }
        StructureKind::NestedLaminar => laminar_family(m, rng),
        _ => Vec::new(),
    }
}

/// Samples one processing set of the given structure. `chain` is the
/// skeleton from [`structure_skeleton`] (consulted only by the chain and
/// laminar kinds). Shared by [`random_instance`] and [`PoissonStream`] so
/// both draw sets with identical per-task RNG consumption.
fn sample_set(
    structure: StructureKind,
    m: usize,
    chain: &[ProcSet],
    rng: &mut impl Rng,
) -> ProcSet {
    match structure {
        StructureKind::Unrestricted => ProcSet::full(m),
        StructureKind::IntervalFixed(k) => {
            assert!((1..=m).contains(&k), "interval size out of range");
            let lo = rng.random_range(0..=m - k);
            ProcSet::interval(lo, lo + k - 1)
        }
        StructureKind::RingFixed(k) => {
            assert!((1..=m).contains(&k), "ring size out of range");
            let start = rng.random_range(0..m);
            ProcSet::ring_interval(start, k, m)
        }
        StructureKind::DisjointBlocks(k) => {
            assert!((1..=m).contains(&k), "block size out of range");
            let blocks = m.div_ceil(k);
            let blk = rng.random_range(0..blocks);
            let lo = blk * k;
            ProcSet::interval(lo, (lo + k - 1).min(m - 1))
        }
        StructureKind::InclusivePrefix => {
            let len = rng.random_range(1..=m);
            ProcSet::interval(0, len - 1)
        }
        StructureKind::InclusiveChain | StructureKind::NestedLaminar => {
            chain[rng.random_range(0..chain.len())].clone()
        }
        StructureKind::General => {
            let mut members: Vec<usize> = (0..m).filter(|_| rng.random_bool(0.5)).collect();
            if members.is_empty() {
                members.push(rng.random_range(0..m));
            }
            ProcSet::new(members)
        }
    }
}

/// Configuration for [`PoissonStream`].
#[derive(Debug, Clone)]
pub struct PoissonStreamConfig {
    /// Machine count.
    pub m: usize,
    /// Number of tasks the stream emits before ending.
    pub n: usize,
    /// Structure family (same sampling as [`random_instance`]).
    pub structure: StructureKind,
    /// Poisson arrival rate λ (Section 7.1's release model).
    pub lambda: f64,
    /// `true` → all processing times are 1; otherwise uniform in
    /// `{0.25, 0.5, …, ptime_steps/4}`.
    pub unit: bool,
    /// Number of quarter-unit steps for non-unit processing times.
    pub ptime_steps: u32,
}

impl PoissonStreamConfig {
    /// Unit tasks at arrival rate `lambda`.
    pub fn unit_tasks(m: usize, n: usize, lambda: f64, structure: StructureKind) -> Self {
        PoissonStreamConfig {
            m,
            n,
            structure,
            lambda,
            unit: true,
            ptime_steps: 4,
        }
    }
}

/// A seeded, constant-memory [`ArrivalStream`] of random tasks: Poisson
/// releases (cumulative exponential gaps, so arrivals are natively in
/// non-decreasing order), processing times and sets drawn exactly as in
/// [`random_instance`]. Live state is the RNG, the structure skeleton
/// (`O(m)` sets at most), and one scratch set — independent of `n`, which
/// is what lets million-task runs stream through the engines without an
/// `Instance` ever existing.
///
/// Structured kinds (interval, ring, disjoint blocks, prefix,
/// unrestricted) emit compact [`ProcSetRef`] views natively — the member
/// vector is never built, so even `m`-wide sets cost O(1) per arrival.
/// The per-task RNG draws are byte-identical to [`sample_set`]'s, so the
/// emitted sets equal the batch generator's for the same RNG state.
#[derive(Debug, Clone)]
pub struct PoissonStream {
    m: usize,
    structure: StructureKind,
    unit: bool,
    ptime_steps: u32,
    chain: Vec<ProcSet>,
    arrivals: PoissonProcess,
    rng: StdRng,
    remaining: usize,
    scratch: ProcSet,
}

impl PoissonStream {
    /// Creates the stream; identical `(config, seed)` pairs produce
    /// identical arrival sequences.
    ///
    /// # Panics
    /// Panics on degenerate configurations (zero machines/tasks,
    /// non-positive `lambda`, `k` out of `1..=m`).
    pub fn new(config: &PoissonStreamConfig, seed: u64) -> Self {
        assert!(config.m >= 1 && config.n >= 1, "need machines and tasks");
        let mut rng = derive_rng(seed, 0x57EA);
        let chain = structure_skeleton(config.structure, config.m, &mut rng);
        PoissonStream {
            m: config.m,
            structure: config.structure,
            unit: config.unit,
            ptime_steps: config.ptime_steps,
            chain,
            arrivals: PoissonProcess::new(config.lambda),
            rng,
            remaining: config.n,
            scratch: ProcSet::full(1),
        }
    }
}

impl ArrivalStream for PoissonStream {
    fn machines(&self) -> usize {
        self.m
    }

    fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Per-task draw order mirrors `random_instance`:
        // release, then ptime, then set.
        let release = self.arrivals.next_arrival(&mut self.rng);
        let ptime = if self.unit {
            1.0
        } else {
            0.25 * self.rng.random_range(1..=self.ptime_steps.max(1)) as f64
        };
        // Structured kinds describe the set compactly with the same RNG
        // draws `sample_set` would make; only the chain kinds (which lend
        // a skeleton element) and General (which needs the member vector
        // anyway) touch owned sets.
        let m = self.m;
        let set = match self.structure {
            StructureKind::Unrestricted => ProcSetRef::full(m),
            StructureKind::IntervalFixed(k) => {
                assert!((1..=m).contains(&k), "interval size out of range");
                let lo = self.rng.random_range(0..=m - k);
                ProcSetRef::interval(lo, lo + k - 1)
            }
            StructureKind::RingFixed(k) => {
                assert!((1..=m).contains(&k), "ring size out of range");
                let start = self.rng.random_range(0..m);
                ProcSetRef::ring(start, k, m)
            }
            StructureKind::DisjointBlocks(k) => {
                assert!((1..=m).contains(&k), "block size out of range");
                let blocks = m.div_ceil(k);
                let blk = self.rng.random_range(0..blocks);
                let lo = blk * k;
                ProcSetRef::interval(lo, (lo + k - 1).min(m - 1))
            }
            StructureKind::InclusivePrefix => {
                let len = self.rng.random_range(1..=m);
                ProcSetRef::prefix(len)
            }
            StructureKind::InclusiveChain | StructureKind::NestedLaminar => {
                let i = self.rng.random_range(0..self.chain.len());
                self.chain[i].compact_view()
            }
            StructureKind::General => {
                self.scratch = sample_set(StructureKind::General, m, &self.chain, &mut self.rng);
                self.scratch.compact_view()
            }
        };
        Some((Task::new(release, ptime), set))
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }

    /// Analytic structure report — the generator knows its family by
    /// construction, so no sampling or classification pass is needed
    /// (the stream is lazy; there is nothing to classify yet).
    fn structure_hint(&self) -> Option<StructureReport> {
        let m = self.m;
        let mut r = StructureReport::default();
        match self.structure {
            StructureKind::Unrestricted => {
                r.inclusive = true;
                r.disjoint = true;
                r.nested = true;
                r.interval = true;
                r.ring_interval = true;
                r.fixed_size = Some(m);
            }
            StructureKind::IntervalFixed(k) => {
                r.interval = true;
                r.ring_interval = true;
                r.fixed_size = Some(k);
                if k == m {
                    r.inclusive = true;
                    r.disjoint = true;
                    r.nested = true;
                }
            }
            StructureKind::RingFixed(k) => {
                r.ring_interval = true;
                r.fixed_size = Some(k);
                // Width-m rings degenerate to the full set; width-1 rings
                // never wrap. Either way every set is a plain interval.
                if k == m || k == 1 {
                    r.interval = true;
                }
                if k == m {
                    r.inclusive = true;
                    r.disjoint = true;
                    r.nested = true;
                }
            }
            StructureKind::DisjointBlocks(k) => {
                r.disjoint = true;
                r.nested = true;
                r.interval = true;
                r.ring_interval = true;
                // The last block is short when k ∤ m, so the family has a
                // fixed size only for exact divisions.
                r.fixed_size = if m.is_multiple_of(k) { Some(k) } else { None };
            }
            StructureKind::InclusiveChain | StructureKind::InclusivePrefix => {
                r.inclusive = true;
                r.nested = true;
                // Prefixes are intervals anchored at 0; a random chain
                // permutes machines, so it is not interval in general.
                if matches!(self.structure, StructureKind::InclusivePrefix) {
                    r.interval = true;
                    r.ring_interval = true;
                }
            }
            StructureKind::NestedLaminar => {
                r.nested = true;
                // Laminar nodes are machine-range intervals by
                // construction ([`laminar_family`]).
                r.interval = true;
                r.ring_interval = true;
            }
            StructureKind::General => {}
        }
        Some(r)
    }

    /// [`StructureKind::DisjointBlocks`] is the one family whose sets
    /// partition the machines by construction, so it shards at the block
    /// boundaries; every other kind draws sets that may span the whole
    /// range and stays on a single shard.
    fn shard_plan(&self, max_shards: usize) -> ShardPlan {
        match self.structure {
            StructureKind::DisjointBlocks(k) => ShardPlan::blocks(self.m, k, max_shards),
            _ => ShardPlan::single(self.m),
        }
    }
}

/// A random laminar family over `m` machines: recursively split the
/// machine range, keeping each node with probability 1/2 (the root is
/// always kept so the family is non-empty).
fn laminar_family(m: usize, rng: &mut impl Rng) -> Vec<ProcSet> {
    let mut fam = vec![ProcSet::full(m)];
    split(0, m, rng, &mut fam);
    fam
}

fn split(lo: usize, hi: usize, rng: &mut impl Rng, fam: &mut Vec<ProcSet>) {
    if hi - lo <= 1 {
        return;
    }
    let mid = rng.random_range(lo + 1..hi);
    for (a, b) in [(lo, mid), (mid, hi)] {
        if rng.random_bool(0.6) {
            fam.push(ProcSet::interval(a, b - 1));
        }
        split(a, b, rng, fam);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_core::structure;

    fn gen(kind: StructureKind, seed: u64) -> Instance {
        random_instance(&RandomInstanceConfig::unit_tasks(8, 60, kind), seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(StructureKind::General, 5);
        let b = gen(StructureKind::General, 5);
        assert_eq!(a, b);
        let c = gen(StructureKind::General, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn interval_structure_holds() {
        for seed in 0..10 {
            let inst = gen(StructureKind::IntervalFixed(3), seed);
            assert!(structure::is_interval_family(inst.sets()));
            assert_eq!(structure::fixed_size(inst.sets()), Some(3));
        }
    }

    #[test]
    fn ring_structure_holds() {
        for seed in 0..10 {
            let inst = gen(StructureKind::RingFixed(3), seed);
            assert!(structure::is_ring_interval_family(inst.sets(), 8));
        }
    }

    #[test]
    fn disjoint_structure_holds() {
        for seed in 0..10 {
            let inst = gen(StructureKind::DisjointBlocks(4), seed);
            assert!(structure::is_disjoint_family(inst.sets()));
        }
    }

    #[test]
    fn inclusive_structure_holds() {
        for seed in 0..10 {
            let inst = gen(StructureKind::InclusiveChain, seed);
            assert!(structure::is_inclusive(inst.sets()), "seed {seed}");
        }
    }

    #[test]
    fn inclusive_prefix_structure_holds() {
        for seed in 0..10 {
            let inst = gen(StructureKind::InclusivePrefix, seed);
            assert!(structure::is_inclusive(inst.sets()), "seed {seed}");
            for set in inst.sets() {
                assert_eq!(set.min(), Some(0), "seed {seed}: not a prefix");
                assert!(set.as_contiguous().is_some(), "seed {seed}: not a prefix");
            }
        }
    }

    #[test]
    fn nested_structure_holds() {
        for seed in 0..10 {
            let inst = gen(StructureKind::NestedLaminar, seed);
            assert!(structure::is_nested(inst.sets()), "seed {seed}");
        }
    }

    #[test]
    fn unrestricted_is_full_sets() {
        let inst = gen(StructureKind::Unrestricted, 1);
        assert!(inst.is_unrestricted());
    }

    #[test]
    fn non_unit_ptimes_are_quarter_steps() {
        let cfg = RandomInstanceConfig {
            m: 4,
            n: 50,
            structure: StructureKind::Unrestricted,
            release_span: 10,
            unit: false,
            ptime_steps: 8,
        };
        let inst = random_instance(&cfg, 3);
        for t in inst.tasks() {
            assert!(t.ptime > 0.0 && t.ptime <= 2.0);
            assert_eq!((t.ptime * 4.0).fract(), 0.0);
        }
    }

    #[test]
    fn poisson_stream_is_sorted_deterministic_and_structured() {
        use flowsched_core::stream::collect_stream;
        for kind in [
            StructureKind::Unrestricted,
            StructureKind::IntervalFixed(3),
            StructureKind::RingFixed(3),
            StructureKind::DisjointBlocks(4),
            StructureKind::InclusiveChain,
            StructureKind::InclusivePrefix,
            StructureKind::NestedLaminar,
            StructureKind::General,
        ] {
            let cfg = PoissonStreamConfig::unit_tasks(8, 200, 4.0, kind);
            let a = collect_stream(PoissonStream::new(&cfg, 11)).unwrap();
            let b = collect_stream(PoissonStream::new(&cfg, 11)).unwrap();
            assert_eq!(a, b, "{kind:?}: not deterministic per seed");
            assert_eq!(a.len(), 200);
            let releases: Vec<f64> = a.tasks().iter().map(|t| t.release).collect();
            assert!(
                releases.windows(2).all(|w| w[0] <= w[1]),
                "{kind:?}: arrivals out of order"
            );
        }
    }

    #[test]
    fn poisson_stream_draws_sets_like_random_instance() {
        // Interval sets from the stream satisfy the same structural
        // invariants the batch generator guarantees.
        let cfg = PoissonStreamConfig::unit_tasks(8, 300, 2.0, StructureKind::IntervalFixed(3));
        let inst = flowsched_core::stream::collect_stream(PoissonStream::new(&cfg, 7)).unwrap();
        assert!(structure::is_interval_family(inst.sets()));
        assert_eq!(structure::fixed_size(inst.sets()), Some(3));
        let nested = PoissonStreamConfig::unit_tasks(8, 300, 2.0, StructureKind::NestedLaminar);
        let inst = flowsched_core::stream::collect_stream(PoissonStream::new(&nested, 7)).unwrap();
        assert!(structure::is_nested(inst.sets()));
    }

    #[test]
    fn poisson_stream_len_hint_counts_down() {
        let cfg = PoissonStreamConfig::unit_tasks(4, 3, 1.0, StructureKind::Unrestricted);
        let mut s = PoissonStream::new(&cfg, 1);
        use flowsched_core::stream::ArrivalStream;
        assert_eq!(s.len_hint(), Some(3));
        s.next_arrival().unwrap();
        assert_eq!(s.len_hint(), Some(2));
        s.next_arrival().unwrap();
        s.next_arrival().unwrap();
        assert_eq!(s.len_hint(), Some(0));
        assert!(s.next_arrival().is_none());
    }

    #[test]
    fn poisson_stream_feeds_the_engine_directly() {
        use flowsched_algos::{eft_stream, TieBreak};
        use flowsched_obs::NoopRecorder;
        let cfg = PoissonStreamConfig::unit_tasks(6, 400, 3.0, StructureKind::RingFixed(3));
        let inst = flowsched_core::stream::collect_stream(PoissonStream::new(&cfg, 21)).unwrap();
        let streamed = eft_stream(
            PoissonStream::new(&cfg, 21),
            TieBreak::Min,
            &mut NoopRecorder,
        );
        let batch = flowsched_algos::eft(&inst, TieBreak::Min);
        assert_eq!(streamed, batch);
        streamed.validate(&inst).unwrap();
    }

    #[test]
    fn structure_hint_is_sound_against_the_classifier() {
        // The analytic hint may under-claim (a random draw can be
        // accidentally more structured than the family guarantees) but
        // must never over-claim: every predicate the hint asserts must
        // hold on a collected sample, and a claimed fixed size must be
        // the classifier's.
        for (kind, m) in [
            (StructureKind::Unrestricted, 8),
            (StructureKind::IntervalFixed(3), 8),
            (StructureKind::RingFixed(3), 8),
            (StructureKind::RingFixed(1), 8),
            (StructureKind::DisjointBlocks(4), 8),
            (StructureKind::DisjointBlocks(3), 8), // 3 ∤ 8: ragged tail
            (StructureKind::InclusiveChain, 8),
            (StructureKind::InclusivePrefix, 8),
            (StructureKind::NestedLaminar, 8),
            (StructureKind::General, 8),
        ] {
            let cfg = PoissonStreamConfig::unit_tasks(m, 300, 4.0, kind);
            let stream = PoissonStream::new(&cfg, 13);
            let hint = stream.structure_hint().expect("generator knows its family");
            let inst = flowsched_core::stream::collect_stream(stream).unwrap();
            let actual = structure::classify(inst.sets(), m);
            let claims = [
                ("inclusive", hint.inclusive, actual.inclusive),
                ("disjoint", hint.disjoint, actual.disjoint),
                ("nested", hint.nested, actual.nested),
                ("interval", hint.interval, actual.interval),
                ("ring_interval", hint.ring_interval, actual.ring_interval),
            ];
            for (name, claimed, holds) in claims {
                assert!(!claimed || holds, "{kind:?}: hint claims {name} falsely");
            }
            if let Some(k) = hint.fixed_size {
                assert_eq!(actual.fixed_size, Some(k), "{kind:?}: fixed size");
            }
        }
    }

    #[test]
    fn shard_plan_splits_disjoint_blocks_only() {
        let blocks = PoissonStreamConfig::unit_tasks(16, 10, 4.0, StructureKind::DisjointBlocks(4));
        let plan = PoissonStream::new(&blocks, 1).shard_plan(16);
        assert_eq!(plan.shards(), 4);
        assert_eq!(plan.len_of(0), 4);
        for kind in [
            StructureKind::Unrestricted,
            StructureKind::IntervalFixed(4),
            StructureKind::RingFixed(4),
            StructureKind::General,
        ] {
            let cfg = PoissonStreamConfig::unit_tasks(16, 10, 4.0, kind);
            assert!(
                PoissonStream::new(&cfg, 1).shard_plan(16).is_single(),
                "{kind:?} must not shard"
            );
        }
    }

    #[test]
    fn instances_are_schedulable_by_eft() {
        use flowsched_algos::{eft, TieBreak};
        for kind in [
            StructureKind::Unrestricted,
            StructureKind::IntervalFixed(2),
            StructureKind::RingFixed(3),
            StructureKind::DisjointBlocks(2),
            StructureKind::InclusiveChain,
            StructureKind::InclusivePrefix,
            StructureKind::NestedLaminar,
            StructureKind::General,
        ] {
            let inst = gen(kind, 9);
            let s = eft(&inst, TieBreak::Min);
            s.validate(&inst).unwrap();
        }
    }
}
