//! Seeded random instance generation over every structure class, for
//! property tests and benchmarks.

use flowsched_core::instance::{Instance, InstanceBuilder};
use flowsched_core::procset::ProcSet;
use flowsched_core::task::Task;
use flowsched_stats::rng::derive_rng;
use rand::Rng;

/// Which processing-set structure the generated family follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// Every task may run anywhere (`P | online-rᵢ | Fmax`).
    Unrestricted,
    /// Contiguous intervals of size `k` at random positions.
    IntervalFixed(usize),
    /// Ring (wrap-around) intervals of size `k` at random positions — the
    /// key-value-store replication shape.
    RingFixed(usize),
    /// The cluster split into fixed disjoint blocks of size `k`; each task
    /// picks one block.
    DisjointBlocks(usize),
    /// A random chain `S₁ ⊆ S₂ ⊆ … ⊆ M`; each task picks a chain element.
    InclusiveChain,
    /// A random laminar family; each task picks one node.
    NestedLaminar,
    /// Arbitrary random non-empty subsets.
    General,
}

/// Configuration for [`random_instance`].
#[derive(Debug, Clone)]
pub struct RandomInstanceConfig {
    /// Machine count.
    pub m: usize,
    /// Task count.
    pub n: usize,
    /// Structure family.
    pub structure: StructureKind,
    /// Releases are uniform integers in `[0, release_span]`.
    pub release_span: u64,
    /// `true` → all processing times are 1; otherwise uniform in
    /// `{0.25, 0.5, …, ptime_steps/4}`.
    pub unit: bool,
    /// Number of quarter-unit steps for non-unit processing times.
    pub ptime_steps: u32,
}

impl RandomInstanceConfig {
    /// A reasonable default: unit tasks, releases over `2n/m` steps
    /// (load ≈ m/2).
    pub fn unit_tasks(m: usize, n: usize, structure: StructureKind) -> Self {
        RandomInstanceConfig {
            m,
            n,
            structure,
            release_span: (2 * n as u64 / m.max(1) as u64).max(1),
            unit: true,
            ptime_steps: 4,
        }
    }
}

/// Generates a random instance; identical `(config, seed)` pairs produce
/// identical instances.
///
/// # Panics
/// Panics on degenerate configurations (zero machines/tasks, `k` out of
/// `1..=m`).
pub fn random_instance(config: &RandomInstanceConfig, seed: u64) -> Instance {
    assert!(config.m >= 1 && config.n >= 1, "need machines and tasks");
    let m = config.m;
    let mut rng = derive_rng(seed, 0x5EED);

    // Pre-build the structured family skeleton where applicable.
    let chain: Vec<ProcSet> = match config.structure {
        StructureKind::InclusiveChain => {
            // Random nested prefix sizes 1 ≤ s₁ < s₂ < … ≤ m over a random
            // machine order.
            let order = flowsched_stats::permutation::random_permutation(m, &mut rng);
            let mut sizes: Vec<usize> = (1..=m).collect();
            // Keep a random subset of sizes, always including m.
            sizes.retain(|&s| s == m || rng.random_bool(0.5));
            sizes
                .iter()
                .map(|&s| ProcSet::new(order[..s].to_vec()))
                .collect()
        }
        StructureKind::NestedLaminar => laminar_family(m, &mut rng),
        _ => Vec::new(),
    };

    let mut b = InstanceBuilder::new(m);
    for _ in 0..config.n {
        let release = rng.random_range(0..=config.release_span) as f64;
        let ptime = if config.unit {
            1.0
        } else {
            0.25 * rng.random_range(1..=config.ptime_steps.max(1)) as f64
        };
        let set = match config.structure {
            StructureKind::Unrestricted => ProcSet::full(m),
            StructureKind::IntervalFixed(k) => {
                assert!((1..=m).contains(&k), "interval size out of range");
                let lo = rng.random_range(0..=m - k);
                ProcSet::interval(lo, lo + k - 1)
            }
            StructureKind::RingFixed(k) => {
                assert!((1..=m).contains(&k), "ring size out of range");
                let start = rng.random_range(0..m);
                ProcSet::ring_interval(start, k, m)
            }
            StructureKind::DisjointBlocks(k) => {
                assert!((1..=m).contains(&k), "block size out of range");
                let blocks = m.div_ceil(k);
                let blk = rng.random_range(0..blocks);
                let lo = blk * k;
                ProcSet::interval(lo, (lo + k - 1).min(m - 1))
            }
            StructureKind::InclusiveChain | StructureKind::NestedLaminar => {
                chain[rng.random_range(0..chain.len())].clone()
            }
            StructureKind::General => {
                let mut members: Vec<usize> =
                    (0..m).filter(|_| rng.random_bool(0.5)).collect();
                if members.is_empty() {
                    members.push(rng.random_range(0..m));
                }
                ProcSet::new(members)
            }
        };
        b.push(Task::new(release, ptime), set);
    }
    b.build().expect("random instances are valid by construction")
}

/// A random laminar family over `m` machines: recursively split the
/// machine range, keeping each node with probability 1/2 (the root is
/// always kept so the family is non-empty).
fn laminar_family(m: usize, rng: &mut impl Rng) -> Vec<ProcSet> {
    let mut fam = vec![ProcSet::full(m)];
    split(0, m, rng, &mut fam);
    fam
}

fn split(lo: usize, hi: usize, rng: &mut impl Rng, fam: &mut Vec<ProcSet>) {
    if hi - lo <= 1 {
        return;
    }
    let mid = rng.random_range(lo + 1..hi);
    for (a, b) in [(lo, mid), (mid, hi)] {
        if rng.random_bool(0.6) {
            fam.push(ProcSet::interval(a, b - 1));
        }
        split(a, b, rng, fam);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_core::structure;

    fn gen(kind: StructureKind, seed: u64) -> Instance {
        random_instance(&RandomInstanceConfig::unit_tasks(8, 60, kind), seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(StructureKind::General, 5);
        let b = gen(StructureKind::General, 5);
        assert_eq!(a, b);
        let c = gen(StructureKind::General, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn interval_structure_holds() {
        for seed in 0..10 {
            let inst = gen(StructureKind::IntervalFixed(3), seed);
            assert!(structure::is_interval_family(inst.sets()));
            assert_eq!(structure::fixed_size(inst.sets()), Some(3));
        }
    }

    #[test]
    fn ring_structure_holds() {
        for seed in 0..10 {
            let inst = gen(StructureKind::RingFixed(3), seed);
            assert!(structure::is_ring_interval_family(inst.sets(), 8));
        }
    }

    #[test]
    fn disjoint_structure_holds() {
        for seed in 0..10 {
            let inst = gen(StructureKind::DisjointBlocks(4), seed);
            assert!(structure::is_disjoint_family(inst.sets()));
        }
    }

    #[test]
    fn inclusive_structure_holds() {
        for seed in 0..10 {
            let inst = gen(StructureKind::InclusiveChain, seed);
            assert!(structure::is_inclusive(inst.sets()), "seed {seed}");
        }
    }

    #[test]
    fn nested_structure_holds() {
        for seed in 0..10 {
            let inst = gen(StructureKind::NestedLaminar, seed);
            assert!(structure::is_nested(inst.sets()), "seed {seed}");
        }
    }

    #[test]
    fn unrestricted_is_full_sets() {
        let inst = gen(StructureKind::Unrestricted, 1);
        assert!(inst.is_unrestricted());
    }

    #[test]
    fn non_unit_ptimes_are_quarter_steps() {
        let cfg = RandomInstanceConfig {
            m: 4,
            n: 50,
            structure: StructureKind::Unrestricted,
            release_span: 10,
            unit: false,
            ptime_steps: 8,
        };
        let inst = random_instance(&cfg, 3);
        for t in inst.tasks() {
            assert!(t.ptime > 0.0 && t.ptime <= 2.0);
            assert_eq!((t.ptime * 4.0).fract(), 0.0);
        }
    }

    #[test]
    fn instances_are_schedulable_by_eft() {
        use flowsched_algos::{TieBreak, eft};
        for kind in [
            StructureKind::Unrestricted,
            StructureKind::IntervalFixed(2),
            StructureKind::RingFixed(3),
            StructureKind::DisjointBlocks(2),
            StructureKind::InclusiveChain,
            StructureKind::NestedLaminar,
            StructureKind::General,
        ] {
            let inst = gen(kind, 9);
            let s = eft(&inst, TieBreak::Min);
            s.validate(&inst).unwrap();
        }
    }
}
