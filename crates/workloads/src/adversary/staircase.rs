//! Generalized staircase adversary for arbitrary interval families.
//!
//! Theorem 8's stream is a *staircase*: at each step, one task per
//! interval in decreasing-start order (each lands on its interval's
//! first machine under EFT-Min), then `k` extra tasks on the lowest
//! interval that stack up. The construction only uses the family of
//! distinct replica sets, so it generalizes to any interval-structured
//! replication strategy — including the staggered-blocks candidate and
//! the plain disjoint blocks — and gives a *principled* empirical lower
//! bound on EFT's competitive ratio under that strategy.
//!
//! For the overlapping ring family this reduces exactly to the Theorem 8
//! stream (tested); for disjoint blocks it collapses to independent
//! per-block FIFO workloads (EFT stays near-optimal, as Corollary 1
//! predicts); staggered blocks land in between.

use flowsched_algos::eft::ImmediateDispatcher;
use flowsched_core::procset::ProcSet;
use flowsched_core::task::Task;

use crate::outcome::{AdversaryOutcome, ReleaseLog};

/// The per-step release sequence for a family of distinct interval sets:
/// one task per set in decreasing order of interval start (ties: larger
/// end first), then `extra` additional tasks on the lowest-starting set.
pub fn staircase_round(sets: &[ProcSet], extra: usize) -> Vec<ProcSet> {
    assert!(!sets.is_empty(), "need at least one set");
    let mut distinct: Vec<ProcSet> = Vec::new();
    for s in sets {
        assert!(!s.is_empty(), "sets must be non-empty");
        if !distinct.contains(s) {
            distinct.push(s.clone());
        }
    }
    distinct.sort_by(|a, b| {
        b.min()
            .cmp(&a.min())
            .then(b.max().cmp(&a.max()))
    });
    let lowest = distinct.last().expect("non-empty family").clone();
    let mut round = distinct;
    round.extend(std::iter::repeat_n(lowest, extra));
    round
}

/// Drives an immediate-dispatch algorithm through `rounds` staircase
/// steps over the given family. `extra` controls how many stacking tasks
/// hit the lowest set each step (Theorem 8 uses `k − 1` extras beyond
/// the staircase's own type-1 task, i.e. `extra = k − 1`).
///
/// The recorded optimum is computed exactly for short runs by the caller
/// if needed; here it is set to 1 when a perfect matching of each round
/// into distinct machines exists (the Theorem 8 situation), otherwise to
/// the exact unit optimum of the generated instance — see
/// [`run_staircase_with_exact_opt`].
pub fn run_staircase<D: ImmediateDispatcher>(
    algo: &mut D,
    sets: &[ProcSet],
    extra: usize,
    rounds: usize,
) -> AdversaryOutcome {
    let m = algo.machine_count();
    let round = staircase_round(sets, extra);
    let mut log = ReleaseLog::new(m);
    for t in 0..rounds {
        for set in &round {
            log.release(algo, Task::unit(t as f64), set.clone());
        }
    }
    // Optimum: exact when cheap, else the trivial lower bound 1.
    log.finish(1.0)
}

/// Like [`run_staircase`] but recomputes the exact offline optimum with
/// the matching solver on a bounded prefix (the stream is periodic, so a
/// short prefix determines per-round feasibility).
pub fn run_staircase_with_exact_opt<D: ImmediateDispatcher>(
    algo: &mut D,
    sets: &[ProcSet],
    extra: usize,
    rounds: usize,
) -> AdversaryOutcome {
    let mut out = run_staircase(algo, sets, extra, rounds);
    // Exact OPT of a 3-round prefix bounds the steady per-round optimum.
    let m = out.instance.machines();
    let round = staircase_round(sets, extra);
    let mut b = flowsched_core::instance::InstanceBuilder::new(m);
    for t in 0..rounds.min(3) {
        for set in &round {
            b.push_unit(t as f64, set.clone());
        }
    }
    let prefix = b.build().expect("valid prefix");
    out.opt_fmax = flowsched_algos::offline::optimal_unit_fmax(&prefix);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::interval::{interval_adversary_instance, round_types};
    use flowsched_algos::eft::EftState;
    use flowsched_algos::tiebreak::TieBreak;
    use flowsched_kvstore::replication::ReplicationStrategy;

    /// Distinct replica sets of a strategy.
    fn family(strategy: ReplicationStrategy, m: usize, k: usize) -> Vec<ProcSet> {
        let mut out: Vec<ProcSet> = Vec::new();
        for u in 0..m {
            let s = strategy.replica_set(u, k, m);
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    #[test]
    fn reduces_to_theorem8_on_the_contiguous_interval_family() {
        // The family of contiguous type intervals (types 1..=m−k+1) with
        // extra = k − 1 reproduces the Theorem 8 round exactly.
        let (m, k) = (6usize, 3usize);
        let sets: Vec<ProcSet> = (1..=m - k + 1)
            .map(|lambda| ProcSet::interval(lambda - 1, lambda + k - 2))
            .collect();
        let round = staircase_round(&sets, k - 1);
        let expected: Vec<ProcSet> = round_types(m, k)
            .into_iter()
            .map(|lambda| ProcSet::interval(lambda - 1, lambda + k - 2))
            .collect();
        assert_eq!(round, expected);

        // And driving EFT-Min with it matches the dedicated adversary.
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = run_staircase(&mut algo, &sets, k - 1, m * m);
        let reference = interval_adversary_instance(m, k, m * m);
        let ref_schedule = flowsched_algos::eft::eft(&reference, TieBreak::Min);
        assert_eq!(out.fmax(), ref_schedule.fmax(&reference));
    }

    #[test]
    fn disjoint_blocks_resist_the_staircase() {
        // Corollary 1 predicts EFT stays well-behaved on disjoint blocks:
        // the staircase cannot build the m − k + 1 pile.
        let (m, k) = (12usize, 3usize);
        let sets = family(ReplicationStrategy::Disjoint, m, k);
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = run_staircase_with_exact_opt(&mut algo, &sets, k - 1, m * m);
        out.validate().unwrap();
        assert!(
            out.ratio() <= 3.0 - 2.0 / k as f64 + 1e-9,
            "disjoint staircase ratio {} exceeds Corollary 1",
            out.ratio()
        );
    }

    #[test]
    fn overlapping_ring_suffers_most() {
        // Ranking under the same staircase pressure: ring ≥ staggered ≥
        // disjoint (the open-question trade-off, adversarial axis).
        let (m, k) = (12usize, 3usize);
        let fmax_of = |strategy: ReplicationStrategy| {
            let sets = family(strategy, m, k);
            let mut algo = EftState::new(m, TieBreak::Min);
            run_staircase(&mut algo, &sets, k - 1, m * m).fmax()
        };
        let ring = fmax_of(ReplicationStrategy::Overlapping);
        let staggered = fmax_of(ReplicationStrategy::Staggered);
        let disjoint = fmax_of(ReplicationStrategy::Disjoint);
        assert!(
            ring >= staggered && staggered >= disjoint,
            "expected ring ≥ staggered ≥ disjoint, got {ring} / {staggered} / {disjoint}"
        );
        assert!(ring > disjoint, "the staircase must separate the extremes");
    }

    #[test]
    fn round_deduplicates_and_orders() {
        let sets = vec![
            ProcSet::interval(2, 4),
            ProcSet::interval(0, 2),
            ProcSet::interval(2, 4), // duplicate
            ProcSet::interval(4, 5),
        ];
        let round = staircase_round(&sets, 1);
        assert_eq!(round.len(), 4); // 3 distinct + 1 extra
        assert_eq!(round[0], ProcSet::interval(4, 5));
        assert_eq!(round[1], ProcSet::interval(2, 4));
        assert_eq!(round[2], ProcSet::interval(0, 2));
        assert_eq!(round[3], ProcSet::interval(0, 2)); // extra on lowest
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn empty_family_rejected() {
        let _ = staircase_round(&[], 1);
    }
}
