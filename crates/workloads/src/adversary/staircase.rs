//! Generalized staircase adversary for arbitrary interval families.
//!
//! Theorem 8's stream is a *staircase*: at each step, one task per
//! interval in decreasing-start order (each lands on its interval's
//! first machine under EFT-Min), then `k` extra tasks on the lowest
//! interval that stack up. The construction only uses the family of
//! distinct replica sets, so it generalizes to any interval-structured
//! replication strategy — including the staggered-blocks candidate and
//! the plain disjoint blocks — and gives a *principled* empirical lower
//! bound on EFT's competitive ratio under that strategy.
//!
//! For the overlapping ring family this reduces exactly to the Theorem 8
//! stream (tested); for disjoint blocks it collapses to independent
//! per-block FIFO workloads (EFT stays near-optimal, as Corollary 1
//! predicts); staggered blocks land in between.

use flowsched_algos::eft::ImmediateDispatcher;
use flowsched_core::procset::ProcSet;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;

use crate::outcome::{AdversaryOutcome, ReleaseLog, ReleaseSink, StreamingLog, StreamingOutcome};

/// The per-step release sequence for a family of distinct interval sets:
/// one task per set in decreasing order of interval start (ties: larger
/// end first), then `extra` additional tasks on the lowest-starting set.
pub fn staircase_round(sets: &[ProcSet], extra: usize) -> Vec<ProcSet> {
    assert!(!sets.is_empty(), "need at least one set");
    let mut distinct: Vec<ProcSet> = Vec::new();
    for s in sets {
        assert!(!s.is_empty(), "sets must be non-empty");
        if !distinct.contains(s) {
            distinct.push(s.clone());
        }
    }
    distinct.sort_by(|a, b| b.min().cmp(&a.min()).then(b.max().cmp(&a.max())));
    let lowest = distinct.last().expect("non-empty family").clone();
    let mut round = distinct;
    round.extend(std::iter::repeat_n(lowest, extra));
    round
}

/// Drives an immediate-dispatch algorithm through `rounds` staircase
/// steps over the given family. `extra` controls how many stacking tasks
/// hit the lowest set each step (Theorem 8 uses `k − 1` extras beyond
/// the staircase's own type-1 task, i.e. `extra = k − 1`).
///
/// The recorded optimum is computed exactly for short runs by the caller
/// if needed; here it is set to 1 when a perfect matching of each round
/// into distinct machines exists (the Theorem 8 situation), otherwise to
/// the exact unit optimum of the generated instance — see
/// [`run_staircase_with_exact_opt`].
pub fn run_staircase<D: ImmediateDispatcher>(
    algo: &mut D,
    sets: &[ProcSet],
    extra: usize,
    rounds: usize,
) -> AdversaryOutcome {
    let mut log = ReleaseLog::new(algo.machine_count());
    drive_staircase(algo, sets, extra, rounds, &mut log);
    // Optimum: exact when cheap, else the trivial lower bound 1.
    log.finish(1.0)
}

/// [`run_staircase`] folded through a constant-memory [`StreamingLog`];
/// the recorded optimum is the trivial lower bound 1 (use
/// [`run_staircase_with_exact_opt`] when the exact one is needed).
pub fn run_staircase_streaming<D: ImmediateDispatcher>(
    algo: &mut D,
    sets: &[ProcSet],
    extra: usize,
    rounds: usize,
) -> StreamingOutcome {
    let mut fold = StreamingLog::new();
    drive_staircase(algo, sets, extra, rounds, &mut fold);
    fold.finish(1.0)
}

/// The sink-generic core of the staircase stream.
pub fn drive_staircase<D: ImmediateDispatcher, K: ReleaseSink>(
    algo: &mut D,
    sets: &[ProcSet],
    extra: usize,
    rounds: usize,
    sink: &mut K,
) {
    let round = staircase_round(sets, extra);
    for t in 0..rounds {
        for set in &round {
            sink.release(algo, Task::unit(t as f64), set.clone());
        }
    }
}

/// The staircase workload as an oblivious [`ArrivalStream`] over an
/// `m`-machine cluster: `rounds` repetitions of
/// [`staircase_round`]`(sets, extra)` at integer times, lazily, holding
/// only the one-round family in memory. Sets are lent straight out of
/// that family — no per-task clone.
#[derive(Debug, Clone)]
pub struct StaircaseStream {
    m: usize,
    round: Vec<ProcSet>,
    rounds: usize,
    t: usize,
    i: usize,
}

impl StaircaseStream {
    /// Streams `rounds` staircase steps of the family over `m` machines.
    ///
    /// # Panics
    /// Panics if the family is empty or a set exceeds the machine range.
    pub fn new(m: usize, sets: &[ProcSet], extra: usize, rounds: usize) -> Self {
        let round = staircase_round(sets, extra);
        assert!(
            round.iter().all(|s| s.max().is_none_or(|hi| hi < m)),
            "staircase sets must fit the machine range"
        );
        StaircaseStream {
            m,
            round,
            rounds,
            t: 0,
            i: 0,
        }
    }
}

impl ArrivalStream for StaircaseStream {
    fn machines(&self) -> usize {
        self.m
    }

    fn next_arrival(&mut self) -> Option<(Task, flowsched_core::compact::ProcSetRef<'_>)> {
        if self.t >= self.rounds {
            return None;
        }
        let task = Task::unit(self.t as f64);
        let i = self.i;
        self.i += 1;
        if self.i == self.round.len() {
            self.i = 0;
            self.t += 1;
        }
        Some((task, self.round[i].compact_view()))
    }

    fn len_hint(&self) -> Option<usize> {
        Some((self.rounds - self.t) * self.round.len() - self.i)
    }
}

/// Like [`run_staircase`] but recomputes the exact offline optimum with
/// the matching solver on a bounded prefix (the stream is periodic, so a
/// short prefix determines per-round feasibility).
pub fn run_staircase_with_exact_opt<D: ImmediateDispatcher>(
    algo: &mut D,
    sets: &[ProcSet],
    extra: usize,
    rounds: usize,
) -> AdversaryOutcome {
    let mut out = run_staircase(algo, sets, extra, rounds);
    // Exact OPT of a 3-round prefix bounds the steady per-round optimum.
    let m = out.instance.machines();
    let round = staircase_round(sets, extra);
    let mut b = flowsched_core::instance::InstanceBuilder::new(m);
    for t in 0..rounds.min(3) {
        for set in &round {
            b.push_unit(t as f64, set.clone());
        }
    }
    let prefix = b.build().expect("valid prefix");
    out.opt_fmax = flowsched_algos::offline::optimal_unit_fmax(&prefix);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::interval::{interval_adversary_instance, round_types};
    use flowsched_algos::eft::EftState;
    use flowsched_algos::tiebreak::TieBreak;
    use flowsched_kvstore::replication::ReplicationStrategy;

    /// Distinct replica sets of a strategy.
    fn family(strategy: ReplicationStrategy, m: usize, k: usize) -> Vec<ProcSet> {
        let mut out: Vec<ProcSet> = Vec::new();
        for u in 0..m {
            let s = strategy.replica_set(u, k, m);
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    #[test]
    fn reduces_to_theorem8_on_the_contiguous_interval_family() {
        // The family of contiguous type intervals (types 1..=m−k+1) with
        // extra = k − 1 reproduces the Theorem 8 round exactly.
        let (m, k) = (6usize, 3usize);
        let sets: Vec<ProcSet> = (1..=m - k + 1)
            .map(|lambda| ProcSet::interval(lambda - 1, lambda + k - 2))
            .collect();
        let round = staircase_round(&sets, k - 1);
        let expected: Vec<ProcSet> = round_types(m, k)
            .into_iter()
            .map(|lambda| ProcSet::interval(lambda - 1, lambda + k - 2))
            .collect();
        assert_eq!(round, expected);

        // And driving EFT-Min with it matches the dedicated adversary.
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = run_staircase(&mut algo, &sets, k - 1, m * m);
        let reference = interval_adversary_instance(m, k, m * m);
        let ref_schedule = flowsched_algos::eft::eft(&reference, TieBreak::Min);
        assert_eq!(out.fmax(), ref_schedule.fmax(&reference));
    }

    #[test]
    fn disjoint_blocks_resist_the_staircase() {
        // Corollary 1 predicts EFT stays well-behaved on disjoint blocks:
        // the staircase cannot build the m − k + 1 pile.
        let (m, k) = (12usize, 3usize);
        let sets = family(ReplicationStrategy::Disjoint, m, k);
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = run_staircase_with_exact_opt(&mut algo, &sets, k - 1, m * m);
        out.validate().unwrap();
        assert!(
            out.ratio() <= 3.0 - 2.0 / k as f64 + 1e-9,
            "disjoint staircase ratio {} exceeds Corollary 1",
            out.ratio()
        );
    }

    #[test]
    fn overlapping_ring_suffers_most() {
        // Ranking under the same staircase pressure: ring ≥ staggered ≥
        // disjoint (the open-question trade-off, adversarial axis).
        let (m, k) = (12usize, 3usize);
        let fmax_of = |strategy: ReplicationStrategy| {
            let sets = family(strategy, m, k);
            let mut algo = EftState::new(m, TieBreak::Min);
            run_staircase(&mut algo, &sets, k - 1, m * m).fmax()
        };
        let ring = fmax_of(ReplicationStrategy::Overlapping);
        let staggered = fmax_of(ReplicationStrategy::Staggered);
        let disjoint = fmax_of(ReplicationStrategy::Disjoint);
        assert!(
            ring >= staggered && staggered >= disjoint,
            "expected ring ≥ staggered ≥ disjoint, got {ring} / {staggered} / {disjoint}"
        );
        assert!(ring > disjoint, "the staircase must separate the extremes");
    }

    #[test]
    fn round_deduplicates_and_orders() {
        let sets = vec![
            ProcSet::interval(2, 4),
            ProcSet::interval(0, 2),
            ProcSet::interval(2, 4), // duplicate
            ProcSet::interval(4, 5),
        ];
        let round = staircase_round(&sets, 1);
        assert_eq!(round.len(), 4); // 3 distinct + 1 extra
        assert_eq!(round[0], ProcSet::interval(4, 5));
        assert_eq!(round[1], ProcSet::interval(2, 4));
        assert_eq!(round[2], ProcSet::interval(0, 2));
        assert_eq!(round[3], ProcSet::interval(0, 2)); // extra on lowest
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn empty_family_rejected() {
        let _ = staircase_round(&[], 1);
    }

    #[test]
    fn streaming_run_matches_the_materialized_outcome() {
        let (m, k) = (12usize, 3usize);
        let sets = family(ReplicationStrategy::Overlapping, m, k);
        let mut batch_algo = EftState::new(m, TieBreak::Min);
        let out = run_staircase(&mut batch_algo, &sets, k - 1, m * m);
        let mut stream_algo = EftState::new(m, TieBreak::Min);
        let streamed = run_staircase_streaming(&mut stream_algo, &sets, k - 1, m * m);
        assert_eq!(streamed.fmax, out.fmax());
        assert_eq!(streamed.tasks, out.instance.len());
    }

    #[test]
    fn stream_replays_the_driven_releases() {
        // StaircaseStream yields exactly the tasks drive_staircase
        // releases, so EFT over the stream reproduces the run.
        let (m, k) = (6usize, 3usize);
        let sets = family(ReplicationStrategy::Disjoint, m, k);
        let stream = StaircaseStream::new(m, &sets, k - 1, 10);
        assert_eq!(
            stream.len_hint(),
            Some(10 * staircase_round(&sets, k - 1).len())
        );
        let inst = flowsched_core::stream::collect_stream(stream).unwrap();
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = run_staircase(&mut algo, &sets, k - 1, 10);
        assert_eq!(inst, out.instance);
    }
}
