//! Theorem 5 adversary: nested processing sets vs. any online algorithm.
//!
//! Forces a competitive ratio of at least `⅓·⌊log₂(m) + 2⌋` on
//! `P | online-rᵢ, pᵢ=1, Mᵢ(nested) | Fmax`, *without* assuming immediate
//! dispatch (the proof adapts Anand et al.'s unstructured construction).
//!
//! Construction: phases `κ = 0, 1, …, log₂ m` of length `F = log₂(m)+2`.
//! Phase `κ` works on a machine interval `I(u_κ, s_κ)` with
//! `s_κ = m/2^κ`; it releases `G₁`: `s_κ` unit tasks eligible on the whole
//! interval, and `G₂`: for every machine of the interval, one unit task
//! *per time step* of the phase, eligible on that machine only. The next
//! interval is the half of the current one holding the most uncompleted
//! single-machine tasks — provably at least `(κ+1)·s_{κ+1}` of them. When
//! the interval shrinks to one machine, that machine has `log₂ m`
//! uncompleted tasks plus the new `G₁`/`G₂` arrivals: some task flows
//! `≥ log₂(m) + 2`. The optimum keeps every flow `≤ 3` by running `G₁` on
//! the half that will be dropped.
//!
//! This implementation drives an
//! [`flowsched_algos::eft::ImmediateDispatcher`]
//! (EFT in our experiments, which is one particular online algorithm);
//! "uncompleted at `t`" is read off the committed assignments.

use flowsched_algos::eft::ImmediateDispatcher;
use flowsched_core::procset::ProcSet;
use flowsched_core::task::Task;
use flowsched_core::time::Time;

use crate::outcome::{AdversaryOutcome, ReleaseLog, ReleaseSink, StreamingLog, StreamingOutcome};

/// Runs the Theorem 5 adversary against `algo` (unit tasks).
///
/// # Panics
/// Panics if the cluster has fewer than 2 machines.
pub fn nested_adversary<D: ImmediateDispatcher>(algo: &mut D) -> AdversaryOutcome {
    let mut log = ReleaseLog::new(algo.machine_count());
    drive_nested_adversary(algo, &mut log);
    log.finish(3.0)
}

/// [`nested_adversary`] folded through a constant-memory
/// [`StreamingLog`].
///
/// # Panics
/// Panics if the cluster has fewer than 2 machines.
pub fn nested_adversary_streaming<D: ImmediateDispatcher>(algo: &mut D) -> StreamingOutcome {
    let mut fold = StreamingLog::new();
    drive_nested_adversary(algo, &mut fold);
    fold.finish(3.0)
}

/// The sink-generic core of the Theorem 5 construction. The adaptive
/// state it keeps (uncompleted singletons of the *current* interval) is
/// `O(m · log m)`, independent of the sink.
pub fn drive_nested_adversary<D: ImmediateDispatcher, K: ReleaseSink>(algo: &mut D, sink: &mut K) {
    let m_actual = algo.machine_count();
    assert!(m_actual >= 2, "the adversary needs at least two machines");
    let levels = m_actual.ilog2() as usize;
    let m = 1usize << levels;
    let phase_len = levels + 2; // F = log2(m) + 2

    // Per released singleton task: (machine, completion time).
    let mut singletons: Vec<(usize, Time)> = Vec::new();

    let mut u = 0usize; // interval start (zero-based)
    let mut s = m; // interval size
    for phase in 0..=levels {
        let t0 = (phase * phase_len) as Time;
        let interval = ProcSet::interval(u, u + s - 1);
        // G1: s interval-wide unit tasks at t0.
        for _ in 0..s {
            sink.release(algo, Task::unit(t0), interval.clone());
        }
        // G2: one unit task per machine per step of the phase.
        for step in 0..phase_len {
            let t = t0 + step as Time;
            for j in u..u + s {
                let a = sink.release(algo, Task::unit(t), ProcSet::singleton(j));
                singletons.push((j, a.start + 1.0));
            }
        }
        if s == 1 {
            break;
        }
        // Choose the half with the most uncompleted singleton tasks at the
        // start of the next phase.
        let t_next = ((phase + 1) * phase_len) as Time;
        let half = s / 2;
        let count = |lo: usize, hi: usize| -> usize {
            singletons
                .iter()
                .filter(|&&(j, c)| j >= lo && j < hi && c > t_next)
                .count()
        };
        let left = count(u, u + half);
        let right = count(u + half, u + s);
        if right > left {
            u += half;
        }
        s = half;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::EftState;
    use flowsched_algos::tiebreak::TieBreak;
    use flowsched_core::structure;

    #[test]
    fn construction_is_nested_and_unit() {
        let mut algo = EftState::new(8, TieBreak::Min);
        let out = nested_adversary(&mut algo);
        out.validate().unwrap();
        assert!(structure::is_nested(out.instance.sets()));
        assert!(out.instance.is_unit());
        // Intervals are also interval-structured by construction.
        assert!(structure::is_interval_family(out.instance.sets()));
    }

    #[test]
    fn forces_logarithmic_flow_on_eft() {
        // m = 8: the bound promises Fmax ≥ log2(m) + 2 = 5 against any
        // online algorithm.
        for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 2 }] {
            let mut algo = EftState::new(8, tb);
            let out = nested_adversary(&mut algo);
            out.validate().unwrap();
            assert!(
                out.fmax() >= 5.0 - 1e-9,
                "{tb}: Fmax {f} < log2(m)+2",
                f = out.fmax()
            );
        }
    }

    #[test]
    fn bound_grows_with_machines() {
        let fmax_at = |m: usize| {
            let mut algo = EftState::new(m, TieBreak::Min);
            let out = nested_adversary(&mut algo);
            out.fmax()
        };
        assert!(fmax_at(16) >= 6.0 - 1e-9); // log2(16)+2
        assert!(fmax_at(32) >= 7.0 - 1e-9);
    }

    #[test]
    fn claimed_optimum_is_close_for_small_m() {
        // For m = 2 the instance is small enough to audit: OPT ≤ 3 per the
        // paper (G1 on the dropped half, singletons with flow ≤ 3). We
        // check the exact optimum of a prefix-limited instance stays ≤ 3.
        let mut algo = EftState::new(2, TieBreak::Min);
        let out = nested_adversary(&mut algo);
        out.validate().unwrap();
        // The exact optimum requires the matching solver (integer
        // releases, unit tasks — it applies).
        let opt = flowsched_algos::offline::optimal_unit_fmax(&out.instance);
        assert!(opt <= 3.0 + 1e-9, "OPT {opt} exceeds the paper's claim");
        assert!(out.fmax() >= 3.0 - 1e-9, "m=2: Fmax {}", out.fmax());
    }

    #[test]
    fn streaming_run_matches_the_materialized_outcome() {
        for tb in [TieBreak::Min, TieBreak::Rand { seed: 2 }] {
            let mut batch_algo = EftState::new(8, tb);
            let out = nested_adversary(&mut batch_algo);
            let mut stream_algo = EftState::new(8, tb);
            let streamed = nested_adversary_streaming(&mut stream_algo);
            assert_eq!(streamed.fmax, out.fmax(), "{tb}");
            assert_eq!(streamed.tasks, out.instance.len(), "{tb}");
        }
    }

    #[test]
    fn phase_count_and_task_count() {
        // m = 4: phases κ=0,1,2 with F = 4. Tasks: Σ (s + F·s) over
        // s ∈ {4,2,1} = 5·(4+2+1) = 35.
        let mut algo = EftState::new(4, TieBreak::Min);
        let out = nested_adversary(&mut algo);
        assert_eq!(out.instance.len(), 35);
    }
}
