//! Theorem 4 adversary: unstructured size-`k` sets vs. immediate dispatch.
//!
//! Forces any immediate-dispatch algorithm to a ratio of at least
//! `⌊log_k(m)⌋` on `P | online-rᵢ, pᵢ=p, Mᵢ, |Mᵢ|=k | Fmax`.
//!
//! Construction (for `m` a power of `k`): at level `ℓ`, partition the
//! surviving machine set `M(ℓ−1)` into `|M(ℓ−1)|/k` disjoint sets of
//! size `k` and release one task per set at time `ℓ − 1`. The algorithm
//! must pick one machine per set; those choices form `M(ℓ)`, which
//! therefore accumulates `ℓ` stacked tasks per machine. After
//! `log_k m` levels a machine holds `log_k m` tasks, for a flow of
//! `log_k(m)·p − (log_k(m) − 1)`, while the optimum is `p` (run each
//! level on the `k − 1` machines per set that were not chosen).

use flowsched_algos::eft::ImmediateDispatcher;
use flowsched_core::procset::ProcSet;
use flowsched_core::task::Task;
use flowsched_core::time::Time;

use crate::outcome::{AdversaryOutcome, ReleaseLog, ReleaseSink, StreamingLog, StreamingOutcome};

/// Runs the Theorem 4 adversary with set size `k` against `algo`.
///
/// # Panics
/// Panics unless `2 ≤ k ≤ m` and `p > log_k(m)`.
pub fn fixed_size_adversary<D: ImmediateDispatcher>(
    algo: &mut D,
    k: usize,
    p: Time,
) -> AdversaryOutcome {
    let mut log = ReleaseLog::new(algo.machine_count());
    drive_fixed_size_adversary(algo, k, p, &mut log);
    log.finish(p)
}

/// [`fixed_size_adversary`] folded through a constant-memory
/// [`StreamingLog`].
///
/// # Panics
/// Panics unless `2 ≤ k ≤ m` and `p > log_k(m)`.
pub fn fixed_size_adversary_streaming<D: ImmediateDispatcher>(
    algo: &mut D,
    k: usize,
    p: Time,
) -> StreamingOutcome {
    let mut fold = StreamingLog::new();
    drive_fixed_size_adversary(algo, k, p, &mut fold);
    fold.finish(p)
}

/// The sink-generic core of the Theorem 4 construction.
pub fn drive_fixed_size_adversary<D: ImmediateDispatcher, K: ReleaseSink>(
    algo: &mut D,
    k: usize,
    p: Time,
    sink: &mut K,
) {
    let m_actual = algo.machine_count();
    assert!(k >= 2, "set size k must be at least 2");
    assert!(k <= m_actual, "set size k cannot exceed the machine count");
    // Largest power of k that fits: levels = ⌊log_k m'⌋.
    let mut levels = 0usize;
    let mut m = 1usize;
    while m * k <= m_actual {
        m *= k;
        levels += 1;
    }
    assert!(levels >= 1, "need at least k machines");
    assert!(
        p > levels as Time,
        "Theorem 4 requires p > log_k(m); got p = {p} for {levels} levels"
    );

    let mut current: Vec<usize> = (0..m).collect();

    for level in 1..=levels {
        let release = (level - 1) as Time;
        let mut chosen: Vec<usize> = Vec::with_capacity(current.len() / k);
        for chunk in current.chunks(k) {
            debug_assert_eq!(chunk.len(), k, "machine set sizes are powers of k");
            let set = ProcSet::new(chunk.to_vec());
            let a = sink.release(algo, Task::new(release, p), set);
            chosen.push(a.machine.index());
        }
        chosen.sort_unstable();
        current = chosen;
    }
    debug_assert_eq!(current.len(), 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::EftState;
    use flowsched_algos::tiebreak::TieBreak;
    use flowsched_core::structure;

    #[test]
    fn sets_have_fixed_size_and_are_disjoint_per_level() {
        let mut algo = EftState::new(8, TieBreak::Min);
        let out = fixed_size_adversary(&mut algo, 2, 10.0);
        out.validate().unwrap();
        assert_eq!(structure::fixed_size(out.instance.sets()), Some(2));
    }

    #[test]
    fn forces_log_k_ratio_on_eft() {
        // m = 8, k = 2 → 3 levels; Fmax ≥ 3p − 2; ratio → 3.
        let p = 1000.0;
        for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 1 }] {
            let mut algo = EftState::new(8, tb);
            let out = fixed_size_adversary(&mut algo, 2, p);
            out.validate().unwrap();
            assert!(
                out.fmax() >= 3.0 * p - 2.0 - 1e-9,
                "{tb}: Fmax {f}",
                f = out.fmax()
            );
            assert!(out.ratio() >= 2.9);
        }
    }

    #[test]
    fn k3_on_nine_machines() {
        let p = 500.0;
        let mut algo = EftState::new(9, TieBreak::Min);
        let out = fixed_size_adversary(&mut algo, 3, p);
        out.validate().unwrap();
        // 2 levels → Fmax ≥ 2p − 1.
        assert!(out.fmax() >= 2.0 * p - 1.0 - 1e-9);
        assert_eq!(out.instance.len(), 3 + 1);
    }

    #[test]
    fn optimum_matches_brute_force_on_small_case() {
        let mut algo = EftState::new(4, TieBreak::Min);
        let out = fixed_size_adversary(&mut algo, 2, 3.0);
        let exact = flowsched_algos::offline::brute_force_fmax(&out.instance);
        assert!((exact - 3.0).abs() < 1e-9, "claimed OPT 3.0, exact {exact}");
    }

    #[test]
    fn task_count_is_geometric_series() {
        let mut algo = EftState::new(16, TieBreak::Min);
        let out = fixed_size_adversary(&mut algo, 2, 100.0);
        // 8 + 4 + 2 + 1 tasks.
        assert_eq!(out.instance.len(), 15);
    }

    #[test]
    fn streaming_run_matches_the_materialized_outcome() {
        let mut batch_algo = EftState::new(9, TieBreak::Min);
        let out = fixed_size_adversary(&mut batch_algo, 3, 500.0);
        let mut stream_algo = EftState::new(9, TieBreak::Min);
        let streamed = fixed_size_adversary_streaming(&mut stream_algo, 3, 500.0);
        assert_eq!(streamed.fmax, out.fmax());
        assert_eq!(streamed.tasks, out.instance.len());
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn k1_rejected() {
        let mut algo = EftState::new(4, TieBreak::Min);
        let _ = fixed_size_adversary(&mut algo, 1, 10.0);
    }
}
