//! Theorem 8/9 adversary: fixed-size intervals vs. EFT.
//!
//! The oblivious instance driving EFT-Min (and, almost surely, EFT-Rand)
//! to a competitive ratio of `m − k + 1` on
//! `P | online-rᵢ, pᵢ=1, Mᵢ(interval), |Mᵢ|=k | Fmax`.
//!
//! At every integer time `t` the adversary releases `m` unit tasks, in
//! order (one-based task index `i`, one-based machine types):
//!
//! - for `1 ≤ i ≤ m − k`: task `i` is of type `m − k − i + 2`, i.e. its
//!   interval starts at machine `M_{m−k−i+2}` — a descending staircase of
//!   intervals covering `M₂ … Mₘ`;
//! - for `m − k < i ≤ m`: task `i` is of type 1 (interval `M₁ … M_k`).
//!
//! EFT-Min greedily fills low indices; the profile `w_t` provably climbs
//! to the stable profile `w_τ(j) = min(m−j, m−k)`, after which the `k`
//! trailing type-1 tasks stack on the first machines and some task flows
//! `m − k + 1`. The optimum schedules every type-`≥ k+1` task on the
//! *last* machine of its interval, keeping all flows at 1.

use flowsched_algos::eft::ImmediateDispatcher;
use flowsched_core::compact::ProcSetRef;
use flowsched_core::instance::{Instance, InstanceBuilder};
use flowsched_core::procset::ProcSet;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;

use crate::outcome::{AdversaryOutcome, ReleaseLog, ReleaseSink, StreamingLog, StreamingOutcome};

/// The processing interval of a task of one-based type `λ` with interval
/// size `k`: machines `M_λ … M_{λ+k−1}` (zero-based `[λ−1, λ+k−2]`).
fn type_interval(lambda: usize, k: usize, m: usize) -> ProcSet {
    debug_assert!(lambda >= 1 && lambda + k - 1 <= m);
    ProcSet::interval(lambda - 1, lambda + k - 2)
}

/// The type sequence of the `m` tasks released at each step (one-based
/// types, in release order).
pub fn round_types(m: usize, k: usize) -> Vec<usize> {
    let mut types = Vec::with_capacity(m);
    for i in 1..=m - k {
        types.push(m - k - i + 2);
    }
    types.extend(std::iter::repeat_n(1, k));
    types
}

/// Builds the oblivious Theorem 8 instance: `rounds` integer steps of `m`
/// unit tasks each.
///
/// # Panics
/// Panics unless `1 < k < m` (the theorem's hypothesis).
pub fn interval_adversary_instance(m: usize, k: usize, rounds: usize) -> Instance {
    assert!(k > 1 && k < m, "Theorem 8 requires 1 < k < m");
    let mut b = InstanceBuilder::new(m);
    let types = round_types(m, k);
    for t in 0..rounds {
        for &lambda in &types {
            b.push_unit(t as f64, type_interval(lambda, k, m));
        }
    }
    b.build().expect("adversary instance is valid")
}

/// Drives an immediate-dispatch algorithm through the Theorem 8 stream
/// for `rounds` steps. The offline optimum of the construction is 1
/// (every task can run with unit flow).
///
/// ```
/// use flowsched_algos::{EftState, TieBreak};
/// use flowsched_workloads::adversary::interval::run_interval_adversary;
///
/// let (m, k) = (6, 3);
/// let mut algo = EftState::new(m, TieBreak::Min);
/// let out = run_interval_adversary(&mut algo, k, m * m);
/// assert_eq!(out.fmax(), (m - k + 1) as f64); // Theorem 8, exactly
/// assert_eq!(out.opt_fmax, 1.0);
/// ```
///
/// # Panics
/// Panics unless `1 < k < m`.
pub fn run_interval_adversary<D: ImmediateDispatcher>(
    algo: &mut D,
    k: usize,
    rounds: usize,
) -> AdversaryOutcome {
    let mut log = ReleaseLog::new(algo.machine_count());
    drive_interval_adversary(algo, k, rounds, &mut log);
    log.finish(1.0)
}

/// [`run_interval_adversary`] folded through a constant-memory
/// [`StreamingLog`] — no instance or schedule is materialized, so
/// `rounds` can be arbitrarily large.
///
/// # Panics
/// Panics unless `1 < k < m`.
pub fn run_interval_adversary_streaming<D: ImmediateDispatcher>(
    algo: &mut D,
    k: usize,
    rounds: usize,
) -> StreamingOutcome {
    let mut fold = StreamingLog::new();
    drive_interval_adversary(algo, k, rounds, &mut fold);
    fold.finish(1.0)
}

/// The sink-generic core of the Theorem 8 stream: releases `rounds`
/// steps of `m` typed unit tasks into `sink`.
pub fn drive_interval_adversary<D: ImmediateDispatcher, K: ReleaseSink>(
    algo: &mut D,
    k: usize,
    rounds: usize,
    sink: &mut K,
) {
    let m = algo.machine_count();
    assert!(k > 1 && k < m, "Theorem 8 requires 1 < k < m");
    let types = round_types(m, k);
    for t in 0..rounds {
        for &lambda in &types {
            sink.release(algo, Task::unit(t as f64), type_interval(lambda, k, m));
        }
    }
}

/// The oblivious Theorem 8 stream as an [`ArrivalStream`]: the same
/// arrivals as [`interval_adversary_instance`], generated lazily in
/// `O(m)` memory (the construction does not depend on the algorithm's
/// choices, so it streams without feedback). Each typed interval is
/// emitted as a two-word [`ProcSetRef::Interval`] — nothing per-task is
/// allocated no matter how large `m` or `k` grow.
#[derive(Debug, Clone)]
pub struct IntervalAdversaryStream {
    m: usize,
    k: usize,
    types: Vec<usize>,
    rounds: usize,
    t: usize,
    i: usize,
}

impl IntervalAdversaryStream {
    /// Streams `rounds` steps of the `(m, k)` construction.
    ///
    /// # Panics
    /// Panics unless `1 < k < m`.
    pub fn new(m: usize, k: usize, rounds: usize) -> Self {
        assert!(k > 1 && k < m, "Theorem 8 requires 1 < k < m");
        IntervalAdversaryStream {
            m,
            k,
            types: round_types(m, k),
            rounds,
            t: 0,
            i: 0,
        }
    }
}

impl ArrivalStream for IntervalAdversaryStream {
    fn machines(&self) -> usize {
        self.m
    }

    fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
        if self.t >= self.rounds {
            return None;
        }
        let lambda = self.types[self.i];
        let task = Task::unit(self.t as f64);
        self.i += 1;
        if self.i == self.types.len() {
            self.i = 0;
            self.t += 1;
        }
        // Same machines as `type_interval(lambda, k, m)`, without the Vec.
        Some((task, ProcSetRef::interval(lambda - 1, lambda + self.k - 2)))
    }

    fn len_hint(&self) -> Option<usize> {
        Some((self.rounds - self.t) * self.types.len() - self.i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::EftState;
    use flowsched_algos::tiebreak::TieBreak;
    use flowsched_core::profile::{profile_at, stable_profile};
    use flowsched_core::structure;

    #[test]
    fn round_type_sequence_matches_paper() {
        // m = 6, k = 3: type 4 covers M4–M6, down to type 2, then three
        // type-1 tasks (paper Figure 3).
        assert_eq!(round_types(6, 3), vec![4, 3, 2, 1, 1, 1]);
    }

    #[test]
    fn instance_is_fixed_size_interval_structured() {
        let inst = interval_adversary_instance(6, 3, 4);
        assert!(structure::is_interval_family(inst.sets()));
        assert_eq!(structure::fixed_size(inst.sets()), Some(3));
        assert_eq!(inst.len(), 24);
        assert!(inst.is_unit());
    }

    #[test]
    fn eft_min_reaches_m_minus_k_plus_1() {
        // Theorem 8: EFT-Min's max flow reaches m − k + 1 while OPT = 1.
        for (m, k) in [(6, 3), (8, 2), (10, 4), (5, 2)] {
            let rounds = m * m; // comfortably beyond convergence
            let mut algo = EftState::new(m, TieBreak::Min);
            let out = run_interval_adversary(&mut algo, k, rounds);
            out.validate().unwrap();
            let target = (m - k + 1) as f64;
            assert!(
                out.fmax() >= target,
                "m={m} k={k}: Fmax {f} < {target}",
                f = out.fmax()
            );
            assert!(out.ratio() >= target);
        }
    }

    #[test]
    fn eft_rand_reaches_the_bound_almost_surely() {
        // Theorem 9: with a tie-break that never discards a candidate, the
        // bound is reached with probability 1; a long run should exhibit it.
        let (m, k) = (6, 3);
        let mut algo = EftState::new(m, TieBreak::Rand { seed: 123 });
        let out = run_interval_adversary(&mut algo, k, 400);
        out.validate().unwrap();
        assert!(
            out.fmax() >= (m - k + 1) as f64,
            "EFT-Rand Fmax {f}",
            f = out.fmax()
        );
    }

    #[test]
    fn profile_converges_to_stable_profile_under_eft_min() {
        // Lemma 3/4: the EFT-Min profile reaches w_τ(j) = min(m−j, m−k).
        let (m, k) = (6, 3);
        let rounds = m * m;
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = run_interval_adversary(&mut algo, k, rounds);
        let expected = stable_profile(m, k);
        let reached =
            (1..rounds).any(|t| profile_at(&out.schedule, &out.instance, t as f64) == expected);
        assert!(reached, "stable profile never reached in {rounds} rounds");
    }

    #[test]
    fn profiles_stay_non_increasing_under_eft_min() {
        // Lemma 2: w_t is non-increasing in the machine index at each step.
        let (m, k) = (7, 3);
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = run_interval_adversary(&mut algo, k, 30);
        for t in 0..30 {
            let w = profile_at(&out.schedule, &out.instance, t as f64);
            assert!(
                flowsched_core::profile::is_non_increasing(&w),
                "t={t}: profile {w:?} increases"
            );
        }
    }

    #[test]
    fn optimum_is_one_on_small_prefix() {
        // Verify OPT = 1 exactly with the matching solver on a short run.
        let inst = interval_adversary_instance(6, 3, 3);
        let opt = flowsched_algos::offline::optimal_unit_fmax(&inst);
        assert_eq!(opt, 1.0);
    }

    #[test]
    fn eft_max_is_not_fooled_by_this_stream() {
        // EFT-Max schedules staircase tasks onto their last machines
        // naturally, so it should stay well below EFT-Min's flow here —
        // the asymmetry the tie-break ablation (Fig. 11) explores.
        let (m, k) = (6, 3);
        let mut min_algo = EftState::new(m, TieBreak::Min);
        let min_out = run_interval_adversary(&mut min_algo, k, m * m);
        let mut max_algo = EftState::new(m, TieBreak::Max);
        let max_out = run_interval_adversary(&mut max_algo, k, m * m);
        assert!(
            max_out.fmax() < min_out.fmax(),
            "EFT-Max {mx} should beat EFT-Min {mn} on the oblivious stream",
            mx = max_out.fmax(),
            mn = min_out.fmax()
        );
    }

    #[test]
    fn weighted_distance_is_non_increasing_under_any_tiebreak() {
        // Lemma 5: Φ_{t+1} ≤ Φ_t on the adversary stream, for EFT with
        // any tie-break — the potential argument behind Theorem 9.
        use flowsched_core::profile::weighted_distance;
        let (m, k) = (6, 3);
        for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 5 }] {
            let mut algo = EftState::new(m, tb);
            let out = run_interval_adversary(&mut algo, k, 60);
            let mut prev = f64::INFINITY;
            for t in 0..60 {
                let w = profile_at(&out.schedule, &out.instance, t as f64);
                let phi = weighted_distance(&w, m, k);
                assert!(
                    phi <= prev + 1e-9,
                    "{tb}: Φ increased at t={t}: {phi} > {prev}"
                );
                prev = phi;
            }
        }
    }

    #[test]
    #[should_panic(expected = "1 < k < m")]
    fn k_equal_m_rejected() {
        let _ = interval_adversary_instance(4, 4, 1);
    }

    #[test]
    fn stream_replays_the_oblivious_instance() {
        let (m, k, rounds) = (6, 3, 5);
        let collected =
            flowsched_core::stream::collect_stream(IntervalAdversaryStream::new(m, k, rounds))
                .unwrap();
        assert_eq!(collected, interval_adversary_instance(m, k, rounds));
        let mut s = IntervalAdversaryStream::new(m, k, rounds);
        assert_eq!(s.len_hint(), Some(rounds * m));
        s.next_arrival().unwrap();
        assert_eq!(s.len_hint(), Some(rounds * m - 1));
    }

    #[test]
    fn streaming_run_matches_the_materialized_outcome() {
        let (m, k, rounds) = (6, 3, 36);
        let mut batch_algo = EftState::new(m, TieBreak::Min);
        let out = run_interval_adversary(&mut batch_algo, k, rounds);
        let mut stream_algo = EftState::new(m, TieBreak::Min);
        let streamed = run_interval_adversary_streaming(&mut stream_algo, k, rounds);
        assert_eq!(streamed.fmax, out.fmax());
        assert_eq!(streamed.tasks, out.instance.len());
        assert_eq!(streamed.opt_fmax, out.opt_fmax);
        assert_eq!(streamed.fmax, (m - k + 1) as f64);
    }
}
