//! Exhaustive adversarial search at small scale.
//!
//! The paper proves EFT-Min's ratio is at least `m − k + 1` on size-`k`
//! intervals via one clever stream. Is that the *worst* stream? At small
//! `m` we can answer by brute force: enumerate every synchronized
//! unit-task stream over the interval types (one batch of `m` tasks per
//! integer step, any type per slot), run EFT-Min, and compare against the
//! exact matching-based optimum. The search doubles as a tightness check
//! on the theory (the found worst ratio should match `m − k + 1` once
//! streams are long enough) and as a discovery tool for other strategies'
//! worst cases.

use flowsched_algos::eft::EftState;
use flowsched_algos::offline::optimal_unit_fmax;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_core::instance::{Instance, InstanceBuilder};
use flowsched_core::procset::ProcSet;

/// Result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The largest `Fmax(EFT-Min)/F*max` over all enumerated streams.
    pub worst_ratio: f64,
    /// A stream achieving it.
    pub witness: Instance,
    /// Streams enumerated.
    pub explored: u64,
}

/// Enumerates every stream of `rounds` batches of `batch` unit tasks,
/// each task picking any of the given candidate sets, and returns the
/// worst EFT-Min ratio against the exact optimum.
///
/// The search space is `|sets|^(rounds·batch)`; keep it small
/// (`≤ ~20` total slots). Streams within a batch are canonicalized in
/// non-decreasing set order? No — order matters to EFT, so all orders are
/// enumerated.
///
/// # Panics
/// Panics if the search space exceeds `2^28` streams, or on empty inputs.
pub fn exhaustive_worst_ratio(
    m: usize,
    sets: &[ProcSet],
    batch: usize,
    rounds: usize,
) -> SearchResult {
    assert!(!sets.is_empty() && batch >= 1 && rounds >= 1);
    let slots = batch * rounds;
    let space = (sets.len() as f64).powi(slots as i32);
    assert!(
        space <= (1u64 << 28) as f64,
        "search space too large: {space}"
    );

    let mut worst_ratio = 0.0_f64;
    let mut witness: Option<Instance> = None;
    let mut explored = 0u64;

    // Odometer over set choices per slot.
    let mut choice = vec![0usize; slots];
    loop {
        explored += 1;
        // Build and evaluate this stream.
        let mut b = InstanceBuilder::new(m);
        for (slot, &c) in choice.iter().enumerate() {
            let t = (slot / batch) as f64;
            b.push_unit(t, sets[c].clone());
        }
        let inst = b.build().expect("valid stream");
        let schedule = flowsched_algos::eft::eft(&inst, TieBreak::Min);
        let fmax = schedule.fmax(&inst);
        // Only pay for the exact OPT when the stream could be a new worst.
        if fmax > worst_ratio {
            let opt = optimal_unit_fmax(&inst);
            let ratio = fmax / opt;
            if ratio > worst_ratio {
                worst_ratio = ratio;
                witness = Some(inst);
            }
        }

        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == slots {
                return SearchResult {
                    worst_ratio,
                    witness: witness.expect("at least one stream evaluated"),
                    explored,
                };
            }
            choice[i] += 1;
            if choice[i] < sets.len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

/// Convenience: the interval types of size `k` over `m` machines
/// (the Theorem 8 building blocks).
pub fn interval_types(m: usize, k: usize) -> Vec<ProcSet> {
    assert!(k >= 1 && k <= m);
    (0..=m - k)
        .map(|lo| ProcSet::interval(lo, lo + k - 1))
        .collect()
}

/// Greedy adversarial search for larger scales: at each step, try every
/// type for each of the `m` slots in sequence, keeping the choice that
/// maximizes EFT-Min's backlog potential (the weighted distance of the
/// Theorem 9 analysis, negated). Not exhaustive, but scales to paper
/// sizes and rediscovers the Theorem 8 staircase shape.
pub fn greedy_adversary_stream(m: usize, k: usize, rounds: usize) -> Instance {
    use flowsched_core::profile::weighted_distance;
    let types = interval_types(m, k);
    let mut state = EftState::new(m, TieBreak::Min);
    let mut b = InstanceBuilder::new(m);
    for t in 0..rounds {
        for _ in 0..m {
            // Evaluate each candidate type on a cloned backlog.
            let mut best: Option<(f64, usize)> = None;
            for (ti, set) in types.iter().enumerate() {
                let backlog = state.completions().to_vec();
                // Simulate the dispatch EFT-Min would make.
                let tmin = set
                    .as_slice()
                    .iter()
                    .map(|&j| backlog[j])
                    .fold(f64::INFINITY, f64::min)
                    .max(t as f64);
                let u = *set
                    .as_slice()
                    .iter()
                    .find(|&&j| backlog[j] <= tmin)
                    .expect("tie set non-empty");
                let mut after = backlog;
                after[u] = tmin.max(t as f64).max(after[u]) + 1.0;
                let w: Vec<f64> = after.iter().map(|&c| (c - t as f64).max(0.0)).collect();
                let phi = weighted_distance(&w, m, k);
                // Lower Φ = closer to the failure profile.
                if best.is_none_or(|(bphi, _)| phi < bphi) {
                    best = Some((phi, ti));
                }
            }
            let (_, ti) = best.expect("at least one type");
            let task = flowsched_core::Task::unit(t as f64);
            state.dispatch(task, &types[ti]);
            b.push_unit(t as f64, types[ti].clone());
        }
    }
    b.build().expect("valid stream")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tightness_at_m3_k2() {
        // m = 3, k = 2: the theorem promises a stream forcing ratio
        // m − k + 1 = 2. Exhausting all 2-type streams of 2 rounds × 3
        // tasks confirms 2 is achievable and nothing in this space beats
        // it.
        let sets = interval_types(3, 2);
        let result = exhaustive_worst_ratio(3, &sets, 3, 2);
        assert_eq!(result.explored, 2u64.pow(6));
        assert!(
            (result.worst_ratio - 2.0).abs() < 1e-9,
            "worst ratio {}",
            result.worst_ratio
        );
        // The witness is a genuine instance achieving it.
        let s = flowsched_algos::eft::eft(&result.witness, TieBreak::Min);
        let opt = optimal_unit_fmax(&result.witness);
        assert!((s.fmax(&result.witness) / opt - 2.0).abs() < 1e-9);
    }

    #[test]
    fn short_streams_cannot_reach_the_bound_at_m4() {
        // m = 4, k = 2 → bound 3; with only 2 rounds the backlog cannot
        // build that far, giving a ratio strictly below 3 — evidence the
        // multi-round convergence in Theorem 8's proof is necessary.
        let sets = interval_types(4, 2);
        let result = exhaustive_worst_ratio(4, &sets, 4, 2);
        assert!(result.worst_ratio >= 2.0 - 1e-9);
        assert!(result.worst_ratio < 3.0, "ratio {}", result.worst_ratio);
    }

    #[test]
    fn greedy_stream_rediscovers_theorem8_pressure() {
        // The Φ-greedy adversary should drive EFT-Min's flow to the
        // m − k + 1 bound, like the hand-crafted stream.
        let (m, k) = (6, 3);
        let inst = greedy_adversary_stream(m, k, 2 * m * m);
        let s = flowsched_algos::eft::eft(&inst, TieBreak::Min);
        assert!(
            s.fmax(&inst) >= (m - k + 1) as f64,
            "greedy adversary reached only {}",
            s.fmax(&inst)
        );
    }

    #[test]
    fn interval_types_enumerates_all_positions() {
        let types = interval_types(5, 2);
        assert_eq!(types.len(), 4);
        assert_eq!(types[0], ProcSet::interval(0, 1));
        assert_eq!(types[3], ProcSet::interval(3, 4));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_search_rejected() {
        let sets = interval_types(8, 2);
        let _ = exhaustive_worst_ratio(8, &sets, 8, 8);
    }
}
