//! Theorem 7 adversary: size-`k` intervals vs. any online algorithm.
//!
//! Shows that no online algorithm beats ratio 2 on
//! `P | online-rᵢ, pᵢ=p, Mᵢ(interval), |Mᵢ|=k | Fmax`.
//!
//! The adversary releases one task `T₁` of length `p` at time 0 with
//! interval `{M₂, M₃}` and watches where it lands:
//!
//! - if the algorithm delays it past `p`, its flow alone is `≥ 2p`;
//! - if it runs on `M₂`, two more length-`p` tasks arrive at `σ₁ + 1`
//!   restricted to `{M₁, M₂}` — one of them must wait for `M₂`;
//! - symmetrically, if it runs on `M₃`, the follow-ups target `{M₃, M₄}`.
//!
//! Either way some task flows `≥ 2p − 1`, while the optimum (placing `T₁`
//! on the other machine) keeps every flow at `p`, giving ratio → 2.

use flowsched_algos::eft::ImmediateDispatcher;
use flowsched_core::procset::ProcSet;
use flowsched_core::task::Task;
use flowsched_core::time::Time;

use crate::outcome::{AdversaryOutcome, ReleaseLog, ReleaseSink, StreamingLog, StreamingOutcome};

/// Runs the Theorem 7 adversary against `algo` with processing time `p`.
/// The construction uses interval size `k = 2` on (at least) 4 machines.
///
/// # Panics
/// Panics if the cluster has fewer than 4 machines or `p < 1`.
pub fn theorem7_adversary<D: ImmediateDispatcher>(algo: &mut D, p: Time) -> AdversaryOutcome {
    let mut log = ReleaseLog::new(algo.machine_count());
    drive_theorem7_adversary(algo, p, &mut log);
    log.finish(p)
}

/// [`theorem7_adversary`] folded through a constant-memory
/// [`StreamingLog`].
///
/// # Panics
/// Panics if the cluster has fewer than 4 machines or `p < 1`.
pub fn theorem7_adversary_streaming<D: ImmediateDispatcher>(
    algo: &mut D,
    p: Time,
) -> StreamingOutcome {
    let mut fold = StreamingLog::new();
    drive_theorem7_adversary(algo, p, &mut fold);
    fold.finish(p)
}

/// The sink-generic core of the Theorem 7 construction.
pub fn drive_theorem7_adversary<D: ImmediateDispatcher, K: ReleaseSink>(
    algo: &mut D,
    p: Time,
    sink: &mut K,
) {
    let m = algo.machine_count();
    assert!(m >= 4, "Theorem 7 needs at least 4 machines");
    assert!(p >= 1.0, "the follow-up release at σ₁ + 1 needs p ≥ 1");

    // T1 on {M2, M3} (zero-based {1, 2}).
    let a1 = sink.release(algo, Task::new(0.0, p), ProcSet::new(vec![1, 2]));

    if a1.start < p {
        // Case analysis on the chosen machine.
        let followup_set = if a1.machine.index() == 1 {
            ProcSet::new(vec![0, 1]) // {M1, M2}
        } else {
            ProcSet::new(vec![2, 3]) // {M3, M4}
        };
        let t = a1.start + 1.0;
        sink.release(algo, Task::new(t, p), followup_set.clone());
        sink.release(algo, Task::new(t, p), followup_set);
    }
    // If σ₁ ≥ p the single task already flows ≥ 2p; no follow-up needed.
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::EftState;
    use flowsched_algos::tiebreak::TieBreak;
    use flowsched_core::structure;

    #[test]
    fn forces_ratio_approaching_two_on_eft() {
        let p = 1000.0;
        for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 9 }] {
            let mut algo = EftState::new(4, tb);
            let out = theorem7_adversary(&mut algo, p);
            out.validate().unwrap();
            assert!(
                out.fmax() >= 2.0 * p - 1.0 - 1e-9,
                "{tb}: Fmax {f}",
                f = out.fmax()
            );
            assert!(
                out.ratio() >= 2.0 - 2.0 / p,
                "{tb}: ratio {r}",
                r = out.ratio()
            );
        }
    }

    #[test]
    fn sets_are_fixed_size_intervals() {
        let mut algo = EftState::new(4, TieBreak::Min);
        let out = theorem7_adversary(&mut algo, 10.0);
        assert!(structure::is_interval_family(out.instance.sets()));
        assert_eq!(structure::fixed_size(out.instance.sets()), Some(2));
    }

    #[test]
    fn optimum_claim_verified_by_brute_force() {
        let p = 10.0;
        let mut algo = EftState::new(4, TieBreak::Min);
        let out = theorem7_adversary(&mut algo, p);
        let exact = flowsched_algos::offline::brute_force_fmax(&out.instance);
        assert!((exact - p).abs() < 1e-9, "claimed OPT {p}, exact {exact}");
    }

    #[test]
    fn follow_up_targets_the_committed_machine() {
        // EFT-Min puts T1 on M2 (index 1) → follow-ups on {M1, M2};
        // EFT-Max puts it on M3 (index 2) → follow-ups on {M3, M4}.
        let mut min_algo = EftState::new(4, TieBreak::Min);
        let out_min = theorem7_adversary(&mut min_algo, 5.0);
        assert_eq!(out_min.instance.sets()[1], ProcSet::new(vec![0, 1]));

        let mut max_algo = EftState::new(4, TieBreak::Max);
        let out_max = theorem7_adversary(&mut max_algo, 5.0);
        assert_eq!(out_max.instance.sets()[1], ProcSet::new(vec![2, 3]));
    }

    #[test]
    fn streaming_run_matches_the_materialized_outcome() {
        for tb in [TieBreak::Min, TieBreak::Max] {
            let mut batch_algo = EftState::new(4, tb);
            let out = theorem7_adversary(&mut batch_algo, 50.0);
            let mut stream_algo = EftState::new(4, tb);
            let streamed = theorem7_adversary_streaming(&mut stream_algo, 50.0);
            assert_eq!(streamed.fmax, out.fmax(), "{tb}");
            assert_eq!(streamed.tasks, out.instance.len(), "{tb}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 4 machines")]
    fn too_few_machines_rejected() {
        let mut algo = EftState::new(3, TieBreak::Min);
        let _ = theorem7_adversary(&mut algo, 5.0);
    }
}
