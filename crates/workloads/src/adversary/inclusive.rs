//! Theorem 3 adversary: inclusive processing sets vs. immediate dispatch.
//!
//! Forces any immediate-dispatch algorithm to a competitive ratio of at
//! least `⌊log₂(m) + 1⌋` on `P | online-rᵢ, pᵢ=p, Mᵢ(inclusive) | Fmax`.
//!
//! Construction (for `m` a power of two; other sizes are rounded down):
//! at each level `ℓ = 1..log₂ m`, release `m/2^ℓ` tasks of length
//! `p > log₂ m` at time `ℓ − 1`, restricted to the current machine set
//! `M(ℓ)`; then shrink `M(ℓ+1)` to the most-loaded half of `M(ℓ)` — which
//! provably carries at least `ℓ·m/2^ℓ` of the tasks released so far. A
//! final task released at time `log₂ m` on the single surviving most-
//! loaded machine then waits behind at least `log₂ m` tasks. The optimal
//! schedule runs each level on `M(ℓ) \ M(ℓ+1)` for a max-flow of `p`.

use flowsched_algos::eft::ImmediateDispatcher;
use flowsched_core::procset::ProcSet;
use flowsched_core::task::Task;
use flowsched_core::time::Time;

use crate::outcome::{AdversaryOutcome, ReleaseLog, ReleaseSink, StreamingLog, StreamingOutcome};

/// Runs the Theorem 3 adversary against `algo`.
///
/// `p` is the common processing time; the theorem requires
/// `p > log₂(m)` and the ratio approaches `⌊log₂ m + 1⌋` as `p → ∞`.
///
/// # Panics
/// Panics if the cluster has fewer than 2 machines or `p ≤ log₂ m`.
pub fn inclusive_adversary<D: ImmediateDispatcher>(algo: &mut D, p: Time) -> AdversaryOutcome {
    let mut log = ReleaseLog::new(algo.machine_count());
    drive_inclusive_adversary(algo, p, &mut log);
    log.finish(p)
}

/// [`inclusive_adversary`] folded through a constant-memory
/// [`StreamingLog`].
///
/// # Panics
/// Panics if the cluster has fewer than 2 machines or `p ≤ log₂ m`.
pub fn inclusive_adversary_streaming<D: ImmediateDispatcher>(
    algo: &mut D,
    p: Time,
) -> StreamingOutcome {
    let mut fold = StreamingLog::new();
    drive_inclusive_adversary(algo, p, &mut fold);
    fold.finish(p)
}

/// The sink-generic core of the Theorem 3 construction.
pub fn drive_inclusive_adversary<D: ImmediateDispatcher, K: ReleaseSink>(
    algo: &mut D,
    p: Time,
    sink: &mut K,
) {
    let m_actual = algo.machine_count();
    assert!(m_actual >= 2, "the adversary needs at least two machines");
    let levels = m_actual.ilog2() as usize; // ⌊log₂ m'⌋
    let m = 1usize << levels; // power-of-two working set
    assert!(
        p > levels as Time,
        "Theorem 3 requires p > log2(m); got p = {p} for {levels} levels"
    );

    let mut current: Vec<usize> = (0..m).collect();
    let mut task_count = vec![0usize; m_actual];

    for level in 1..=levels {
        let batch = m >> level; // m / 2^level tasks
        let release = (level - 1) as Time;
        let set = ProcSet::new(current.clone());
        for _ in 0..batch {
            let a = sink.release(algo, Task::new(release, p), set.clone());
            task_count[a.machine.index()] += 1;
        }
        // Shrink to the most-loaded half; stable by machine index among
        // equal counts so runs are deterministic.
        let keep = m >> level;
        current.sort_by(|&a, &b| task_count[b].cmp(&task_count[a]).then(a.cmp(&b)));
        current.truncate(keep);
        current.sort_unstable();
    }

    // One machine survives; it carries at least log2(m) waiting tasks.
    debug_assert_eq!(current.len(), 1);
    let last_set = ProcSet::singleton(current[0]);
    sink.release(algo, Task::new(levels as Time, p), last_set);
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::EftState;
    use flowsched_algos::tiebreak::TieBreak;
    use flowsched_core::structure;

    #[test]
    fn construction_is_inclusive() {
        let mut algo = EftState::new(8, TieBreak::Min);
        let out = inclusive_adversary(&mut algo, 10.0);
        out.validate().unwrap();
        assert!(structure::is_inclusive(out.instance.sets()));
    }

    #[test]
    fn forces_logarithmic_ratio_on_eft() {
        // m = 8 → bound ⌊log2 8 + 1⌋ = 4; with p large the ratio should
        // approach it: Fmax ≥ (log2 m + 1)p − log2 m.
        let p = 1000.0;
        for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 5 }] {
            let mut algo = EftState::new(8, tb);
            let out = inclusive_adversary(&mut algo, p);
            out.validate().unwrap();
            let expected = 4.0 * p - 3.0;
            assert!(
                out.fmax() >= expected - 1e-9,
                "{tb}: Fmax {f} < {expected}",
                f = out.fmax()
            );
            assert!(out.ratio() >= 3.9, "{tb}: ratio {r}", r = out.ratio());
        }
    }

    #[test]
    fn task_counts_match_construction() {
        // Levels release m/2 + m/4 + … + 1 tasks, plus the final one.
        let mut algo = EftState::new(16, TieBreak::Min);
        let out = inclusive_adversary(&mut algo, 100.0);
        assert_eq!(out.instance.len(), 8 + 4 + 2 + 1 + 1);
    }

    #[test]
    fn non_power_of_two_machines_rounded_down() {
        let mut algo = EftState::new(12, TieBreak::Min);
        let out = inclusive_adversary(&mut algo, 100.0);
        out.validate().unwrap();
        // Working set is 8 machines → bound 4, ratio close to it.
        assert!(out.ratio() > 3.5);
    }

    #[test]
    fn optimum_is_achievable() {
        // Cross-check the paper's claimed OPT on a small case with the
        // exact brute-force solver (p small enough that F* = p).
        let mut algo = EftState::new(4, TieBreak::Min);
        let out = inclusive_adversary(&mut algo, 3.0);
        let exact = flowsched_algos::offline::brute_force_fmax(&out.instance);
        assert!((exact - 3.0).abs() < 1e-9, "claimed OPT 3.0, exact {exact}");
    }

    #[test]
    fn streaming_run_matches_the_materialized_outcome() {
        let mut batch_algo = EftState::new(8, TieBreak::Min);
        let out = inclusive_adversary(&mut batch_algo, 100.0);
        let mut stream_algo = EftState::new(8, TieBreak::Min);
        let streamed = inclusive_adversary_streaming(&mut stream_algo, 100.0);
        assert_eq!(streamed.fmax, out.fmax());
        assert_eq!(streamed.tasks, out.instance.len());
        assert_eq!(streamed.ratio(), out.ratio());
    }

    #[test]
    #[should_panic(expected = "p > log2(m)")]
    fn small_p_rejected() {
        let mut algo = EftState::new(8, TieBreak::Min);
        let _ = inclusive_adversary(&mut algo, 2.0);
    }
}
