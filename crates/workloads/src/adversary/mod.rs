//! The paper's lower-bound adversaries, one module per theorem.
//!
//! Each adversary returns an [`AdversaryOutcome`](crate::AdversaryOutcome)
//! carrying the constructed instance, the schedule the attacked algorithm
//! produced, and the offline optimum established by the paper's proof, so
//! the achieved competitive ratio is directly measurable.
//!
//! | Module | Theorem | Structure | Attacks | Bound |
//! |---|---|---|---|---|
//! | [`inclusive`] | Th. 3 | inclusive | immediate dispatch | `⌊log₂ m + 1⌋` |
//! | [`fixed_size`] | Th. 4 | size-k sets | immediate dispatch | `⌊log_k m⌋` |
//! | [`nested`] | Th. 5 | nested | any online | `⅓⌊log₂ m + 2⌋` |
//! | [`theorem7`] | Th. 7 | size-k intervals | any online | `2` |
//! | [`interval`] | Th. 8/9 | size-k intervals | EFT-Min / EFT-Rand | `m − k + 1` |
//! | [`padded`] | Th. 10 | size-k intervals | EFT, any tie-break | `m − k + 1` |

pub mod fixed_size;
pub mod inclusive;
pub mod interval;
pub mod nested;
pub mod padded;
pub mod search;
pub mod staircase;
pub mod theorem7;
