//! Theorem 10 adversary: the small-task padding that defeats EFT under
//! *any* tie-break policy.
//!
//! Theorem 8's bound relies on EFT-Min's bias toward low machine indices.
//! Theorem 10 removes that assumption: before the `m` regular tasks of
//! each step, the adversary injects two rounds of tiny tasks that leave
//! every idle machine `Mᵢ` (one-based `i`) busy until exactly `t + i·δ`.
//! Machine completion times are then pairwise distinct forever, EFT never
//! faces a tie, and the unique earliest-finishing machine is always the
//! lowest-indexed candidate — i.e. EFT with any tie-break replays
//! EFT-Min's trajectory (delayed by at most `m·δ`), and the flow again
//! reaches `m − k + 1` (up to `O(m·δ)`).
//!
//! Per the paper: with `midle` idle machines at step `t`, round 1 releases
//! tasks `T¹_c` of length `c·ε` (`c = 1..midle`), each covering the
//! smallest still-idle machine; round 2 releases, for each `T¹_c`
//! allocated on machine `Mᵢ`, a task `T²_{c,i}` of length `i·δ − c·ε`
//! covering `Mᵢ` — which EFT provably must place on `Mᵢ`, completing at
//! `t + i·δ`. We use dyadic `δ` and `ε = δ/2^⌈log₂ 2m⌉ < δ/(2m)` so all
//! arithmetic is exact in `f64`.

use flowsched_algos::eft::ImmediateDispatcher;
use flowsched_core::procset::ProcSet;
use flowsched_core::task::Task;

use crate::adversary::interval::round_types;
use crate::outcome::{AdversaryOutcome, ReleaseLog, ReleaseSink, StreamingLog, StreamingOutcome};

/// The dyadic delay unit `δ` (2⁻¹⁰). Requires `m·δ < 1`, i.e. `m < 1024`.
pub const DELTA: f64 = 1.0 / 1024.0;

/// Dyadic `ε < δ/(2m)` for `m ≤ 64`: `ε = δ / 256`.
pub const EPSILON: f64 = DELTA / 256.0;

/// The interval of size `k` covering machine `i` (zero-based): `[i, i+k)`
/// when it fits, else the last `k` machines (as in the paper's
/// construction).
fn covering_interval(i: usize, k: usize, m: usize) -> ProcSet {
    if i + k <= m {
        ProcSet::interval(i, i + k - 1)
    } else {
        ProcSet::interval(m - k, m - 1)
    }
}

/// Runs the Theorem 10 padded adversary for `rounds` integer steps.
///
/// Works against any [`ImmediateDispatcher`]; with EFT the flow of some
/// regular task reaches at least `m − k + 1` regardless of the tie-break
/// policy. The recorded optimum is the *asymptotic* value 1: the paper
/// shows the true optimum of the padded instance is `1 + o(1)` as
/// `δ → 0` (regular tasks keep flow 1 as in Theorem 8; the small-task
/// volume is negligible in that limit), so ratios reported against it
/// overshoot the exact finite-δ ratio by only `O(m²δ)`.
///
/// # Panics
/// Panics unless `1 < k < m ≤ 64` (the `ε`/`δ` constants assume `m ≤ 64`).
pub fn padded_interval_adversary<D: ImmediateDispatcher>(
    algo: &mut D,
    k: usize,
    rounds: usize,
) -> AdversaryOutcome {
    let mut log = ReleaseLog::new(algo.machine_count());
    drive_padded_interval_adversary(algo, k, rounds, &mut log);
    log.finish(1.0)
}

/// [`padded_interval_adversary`] folded through a constant-memory
/// [`StreamingLog`].
///
/// # Panics
/// Panics unless `1 < k < m ≤ 64`.
pub fn padded_interval_adversary_streaming<D: ImmediateDispatcher>(
    algo: &mut D,
    k: usize,
    rounds: usize,
) -> StreamingOutcome {
    let mut fold = StreamingLog::new();
    drive_padded_interval_adversary(algo, k, rounds, &mut fold);
    fold.finish(1.0)
}

/// The sink-generic core of the Theorem 10 stream: per integer step, the
/// two small-task padding rounds followed by the Theorem 8 regulars.
pub fn drive_padded_interval_adversary<D: ImmediateDispatcher, K: ReleaseSink>(
    algo: &mut D,
    k: usize,
    rounds: usize,
    sink: &mut K,
) {
    let m = algo.machine_count();
    assert!(k > 1 && k < m, "Theorem 10 requires 1 < k < m");
    assert!(m <= 64, "ε constant sized for m ≤ 64");

    let types = round_types(m, k);

    for t in 0..rounds {
        let now = t as f64;

        // ---- Round 1: one tiny task per idle machine. ----
        // `first_alloc[c-1]` = machine that received T¹_c.
        let mut first_alloc: Vec<usize> = Vec::new();
        loop {
            let completions = algo.machine_completions();
            // Smallest still-idle machine.
            let Some(ic) = (0..m).find(|&j| completions[j] <= now) else {
                break;
            };
            let c = first_alloc.len() + 1;
            let a = sink.release(
                algo,
                Task::new(now, c as f64 * EPSILON),
                covering_interval(ic, k, m),
            );
            first_alloc.push(a.machine.index());
        }

        // ---- Round 2: pin each first-round machine until t + i·δ. ----
        for (c0, &i) in first_alloc.iter().enumerate() {
            let c = c0 + 1;
            let duration = (i + 1) as f64 * DELTA - c as f64 * EPSILON;
            debug_assert!(duration > 0.0);
            let a = sink.release(algo, Task::new(now, duration), covering_interval(i, k, m));
            debug_assert_eq!(
                a.machine.index(),
                i,
                "the paper's Property 1 forces T² onto its target machine"
            );
        }

        // ---- Regular tasks: the Theorem 8 staircase + type-1 batch. ----
        for &lambda in &types {
            sink.release(
                algo,
                Task::new(now, 1.0),
                ProcSet::interval(lambda - 1, lambda + k - 2),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::EftState;
    use flowsched_algos::tiebreak::TieBreak;

    #[test]
    fn every_tiebreak_reaches_the_theorem8_bound() {
        // The whole point of Theorem 10: Max and Rand no longer escape.
        let (m, k) = (6, 3);
        let target = (m - k + 1) as f64;
        for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 77 }] {
            let mut algo = EftState::new(m, tb);
            let out = padded_interval_adversary(&mut algo, k, m * m);
            out.validate().unwrap();
            assert!(
                out.fmax() >= target,
                "{tb}: Fmax {f} < {target} on the padded instance",
                f = out.fmax()
            );
        }
    }

    #[test]
    fn contrast_with_unpadded_stream() {
        // Without padding EFT-Max stays low (see interval.rs); with
        // padding it is forced up — measure both to document the effect.
        let (m, k) = (6, 3);
        let mut plain = EftState::new(m, TieBreak::Max);
        let plain_out = crate::adversary::interval::run_interval_adversary(&mut plain, k, m * m);
        let mut padded = EftState::new(m, TieBreak::Max);
        let padded_out = padded_interval_adversary(&mut padded, k, m * m);
        assert!(
            padded_out.fmax() > plain_out.fmax(),
            "padding must hurt EFT-Max: padded {p} vs plain {q}",
            p = padded_out.fmax(),
            q = plain_out.fmax()
        );
    }

    #[test]
    fn small_tasks_leave_machines_staggered() {
        // After the first step's padding, machine completions must be
        // exactly t + i·δ for idle machines (Property 1).
        let (m, k) = (5, 2);
        let mut algo = EftState::new(m, TieBreak::Rand { seed: 3 });
        // One full round drives padding + regulars; inspect completions
        // after padding of step 0 by replaying manually.
        let out = padded_interval_adversary(&mut algo, k, 1);
        out.validate().unwrap();
        // All small tasks of step 0 completed before 0 + m·δ.
        for (id, task, _) in out.instance.iter() {
            if task.ptime < 1.0 {
                let c = out.schedule.completion(id, &out.instance);
                assert!(
                    c <= (m as f64 + 1.0) * DELTA,
                    "small task completes late: {c}"
                );
            }
        }
    }

    #[test]
    fn ratio_approaches_m_minus_k_plus_1() {
        let (m, k) = (8, 3);
        let mut algo = EftState::new(m, TieBreak::Max);
        let out = padded_interval_adversary(&mut algo, k, m * m * 2);
        let ratio = out.ratio();
        let target = (m - k + 1) as f64;
        assert!(
            ratio >= target * 0.95,
            "ratio {ratio} far below the asymptotic bound {target}"
        );
    }

    #[test]
    fn streaming_run_matches_the_materialized_outcome() {
        let (m, k) = (6, 3);
        for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 77 }] {
            let mut batch_algo = EftState::new(m, tb);
            let out = padded_interval_adversary(&mut batch_algo, k, m * m);
            let mut stream_algo = EftState::new(m, tb);
            let streamed = padded_interval_adversary_streaming(&mut stream_algo, k, m * m);
            assert_eq!(streamed.fmax, out.fmax(), "{tb}");
            assert_eq!(streamed.tasks, out.instance.len(), "{tb}");
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_satisfy_paper_constraints() {
        // ε < δ/(2m) for every supported m.
        assert!(EPSILON < DELTA / (2.0 * 64.0));
        // m·δ < 1 so per-step delays never leak into the next step.
        assert!(64.0 * DELTA < 1.0);
    }
}
