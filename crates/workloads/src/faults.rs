//! Seeded random fault-plan generation.
//!
//! [`FaultPlan`]s are deterministic traces; this module samples them.
//! Per machine, crashes follow a Poisson process of rate
//! [`FaultPlanConfig::crash_rate`] over `[0, horizon)` with
//! exponentially distributed downtimes (mean
//! [`FaultPlanConfig::mean_downtime`]) — sequential sampling makes the
//! outages naturally sorted and disjoint. After each outage, with
//! probability [`ZERO_GAP_PROB`] the next crash lands *exactly* at the
//! recovery instant, producing the touching chains (`[a, b) + [b, c)`)
//! that [`FaultPlan::with_outage`] permits — so property tests exercise
//! the contiguously-down edge case, not just strictly-gapped outages.
//! Independently, each machine
//! is degraded with probability [`FaultPlanConfig::degraded_fraction`]
//! to a speed drawn uniformly from `[min_speed, 1)`. The whole plan is
//! a pure function of `(m, config, seed)` via the workspace's
//! [`derive_rng`] convention, so fault scenarios replay exactly across
//! runs and thread counts.

use flowsched_core::fault::FaultPlan;
use flowsched_stats::rng::derive_rng;
use rand::Rng;

/// Parameters for [`random_fault_plan`].
#[derive(Debug, Clone, Copy)]
pub struct FaultPlanConfig {
    /// Time horizon crashes are sampled over (outages may extend past
    /// it; tasks released later see healthy machines).
    pub horizon: f64,
    /// Expected crashes per machine per unit time (0 disables crashes).
    pub crash_rate: f64,
    /// Mean outage duration (exponentially distributed).
    pub mean_downtime: f64,
    /// Probability that a machine runs degraded (0 disables).
    pub degraded_fraction: f64,
    /// Lower bound of the degraded speed range `[min_speed, 1)`.
    pub min_speed: f64,
    /// Constant dispatcher→machine dispatch latency.
    pub dispatch_latency: f64,
}

impl FaultPlanConfig {
    /// A crash-only configuration: rate `crash_rate`, mean downtime
    /// `mean_downtime`, no degradation, no latency.
    pub fn crashes(horizon: f64, crash_rate: f64, mean_downtime: f64) -> Self {
        FaultPlanConfig {
            horizon,
            crash_rate,
            mean_downtime,
            degraded_fraction: 0.0,
            min_speed: 1.0,
            dispatch_latency: 0.0,
        }
    }
}

/// Probability that the crash following an outage lands exactly at the
/// recovery instant (a zero-gap, exactly-touching outage chain).
pub const ZERO_GAP_PROB: f64 = 0.1;

/// Samples one exponential variate with the given mean. Uses `1 − u`
/// so the argument to `ln` is in `(0, 1]` — never zero.
fn sample_exp<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.random();
    -(1.0 - u).ln() * mean
}

/// Samples a [`FaultPlan`] for `m` machines (see the module docs for
/// the process). Deterministic in `(m, cfg, seed)`.
///
/// # Panics
/// Panics on non-finite or negative rates/durations, a horizon `< 0`,
/// `degraded_fraction` outside `[0, 1]`, or `min_speed` outside
/// `(0, 1]` (forwarded from the plan builders).
pub fn random_fault_plan(m: usize, cfg: &FaultPlanConfig, seed: u64) -> FaultPlan {
    assert!(
        cfg.crash_rate.is_finite() && cfg.crash_rate >= 0.0,
        "crash rate must be finite and >= 0"
    );
    assert!(
        cfg.horizon.is_finite() && cfg.horizon >= 0.0,
        "horizon must be finite and >= 0"
    );
    assert!(
        cfg.mean_downtime.is_finite() && cfg.mean_downtime >= 0.0,
        "mean downtime must be finite and >= 0"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.degraded_fraction),
        "degraded fraction must be in [0, 1]"
    );
    let mut rng = derive_rng(seed, 0xFA17);
    let mut plan = FaultPlan::none(m).with_latency(cfg.dispatch_latency);
    for j in 0..m {
        if cfg.crash_rate > 0.0 {
            let mut t = 0.0;
            let mut touching = false;
            loop {
                if !touching {
                    t += sample_exp(&mut rng, 1.0 / cfg.crash_rate);
                }
                if t >= cfg.horizon {
                    break;
                }
                // Clamp vanishing downtimes so `down < up` always holds.
                let d = sample_exp(&mut rng, cfg.mean_downtime).max(1e-9);
                plan = plan.with_outage(j, t, t + d);
                t += d;
                // Occasionally crash again the instant the machine
                // recovers — the exactly-touching chain with_outage
                // allows and next_alive/earliest_fit must skip through.
                touching = rng.random::<f64>() < ZERO_GAP_PROB;
            }
        }
        if cfg.degraded_fraction > 0.0 && rng.random::<f64>() < cfg.degraded_fraction {
            let speed = cfg.min_speed + rng.random::<f64>() * (1.0 - cfg.min_speed);
            plan = plan.with_speed(j, speed.min(1.0));
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_cfg() -> FaultPlanConfig {
        FaultPlanConfig {
            horizon: 100.0,
            crash_rate: 0.1,
            mean_downtime: 2.0,
            degraded_fraction: 0.5,
            min_speed: 0.25,
            dispatch_latency: 0.5,
        }
    }

    #[test]
    fn same_seed_reproduces_the_plan() {
        let a = random_fault_plan(8, &busy_cfg(), 42);
        let b = random_fault_plan(8, &busy_cfg(), 42);
        assert_eq!(a, b);
        let c = random_fault_plan(8, &busy_cfg(), 43);
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn outages_are_sorted_disjoint_and_rates_plausible() {
        let plan = random_fault_plan(16, &busy_cfg(), 7);
        let mut total = 0usize;
        for j in 0..16 {
            let outs = plan.faults(j).outages();
            total += outs.len();
            for w in outs.windows(2) {
                assert!(w[0].up <= w[1].down);
            }
            for o in outs {
                assert!(o.down < o.up && o.down >= 0.0);
            }
            let s = plan.speed(j);
            assert!(s > 0.0 && s <= 1.0);
        }
        // 16 machines × rate 0.1 × horizon 100 ≈ 160 expected crashes
        // (downtime eats some of the horizon); just pin a sane band.
        assert!(total > 30 && total < 400, "got {total} outages");
    }

    #[test]
    fn generator_emits_exactly_touching_outages() {
        // ~10% of outages are followed by a zero-gap crash; over 16
        // machines × horizon 100 at rate 0.1 that's a double-digit
        // expected count, so a fixed seed reliably produces some.
        let plan = random_fault_plan(16, &busy_cfg(), 7);
        let touching: usize = (0..16)
            .map(|j| {
                plan.faults(j)
                    .outages()
                    .windows(2)
                    .filter(|w| w[0].up == w[1].down)
                    .count()
            })
            .sum();
        assert!(touching > 0, "no exactly-touching outage chains sampled");
    }

    #[test]
    fn zero_rate_gives_no_outages() {
        let cfg = FaultPlanConfig::crashes(100.0, 0.0, 2.0);
        let plan = random_fault_plan(4, &cfg, 1);
        assert!(plan.is_fault_free());
    }
}
