//! Adversarial workload for the **weighted** max flow time objective
//! `max wᵢ·Fᵢ` (Azar–Touitou, arXiv:1712.10273).
//!
//! Each round releases a burst of `lights` unit tasks of weight 1
//! followed by one unit task of weight `heavy_weight`, all at the same
//! integer instant on an unrestricted cluster. A weight-oblivious
//! immediate dispatcher (plain EFT) balances the lights across *all*
//! machines, so the heavy arrival — dispatched last — starts behind a
//! `lights/m` stack and pays `heavy_weight · (lights/m + 1)` weighted
//! flow. The weighted-EFT packing rule
//! ([`flowsched_algos::WeightedEftState`]) instead parks lights on
//! already-loaded machines within their generous `slack/1` budget,
//! keeping an idle machine in reserve; the heavy task's tight
//! `slack/heavy_weight` budget then claims that reserve and its
//! weighted flow stays near `heavy_weight`. Rounds are spaced far
//! enough apart (`lights + 2`) that every round drains before the next,
//! so the gap repeats identically and the stream's ratio does not
//! depend on the round count.

use flowsched_core::compact::ProcSetRef;
use flowsched_core::procset::ProcSet;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;
use flowsched_core::time::Time;

/// The light-burst-then-heavy adversarial stream (module docs).
#[derive(Debug, Clone)]
pub struct WeightedBurstStream {
    full: ProcSet,
    m: usize,
    lights: usize,
    heavy_weight: Time,
    rounds: usize,
    /// Integer spacing between rounds — wide enough to drain.
    gap: usize,
    round: usize,
    i: usize,
}

impl WeightedBurstStream {
    /// `rounds` rounds of `lights` weight-1 unit tasks followed by one
    /// unit task of weight `heavy_weight`, over `m` unrestricted
    /// machines.
    ///
    /// # Panics
    /// Panics when `m == 0`, `lights == 0`, or `heavy_weight < 1`.
    pub fn new(m: usize, lights: usize, heavy_weight: Time, rounds: usize) -> Self {
        assert!(m > 0, "need at least one machine");
        assert!(lights > 0, "a round needs at least one light task");
        assert!(
            heavy_weight >= 1.0,
            "the heavy task must outweigh the lights"
        );
        WeightedBurstStream {
            full: ProcSet::full(m),
            m,
            lights,
            heavy_weight,
            rounds,
            gap: lights + 2,
            round: 0,
            i: 0,
        }
    }

    /// Tasks per round (the lights plus the heavy closer).
    pub fn round_len(&self) -> usize {
        self.lights + 1
    }
}

impl ArrivalStream for WeightedBurstStream {
    fn machines(&self) -> usize {
        self.m
    }

    fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
        if self.round >= self.rounds {
            return None;
        }
        let release = (self.round * self.gap) as Time;
        let task = if self.i < self.lights {
            Task::unit(release)
        } else {
            Task::unit(release).with_weight(self.heavy_weight)
        };
        self.i += 1;
        if self.i == self.round_len() {
            self.i = 0;
            self.round += 1;
        }
        Some((task, self.full.compact_view()))
    }

    fn len_hint(&self) -> Option<usize> {
        Some((self.rounds - self.round) * self.round_len() - self.i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::{EftState, ImmediateDispatcher};
    use flowsched_algos::tiebreak::TieBreak;
    use flowsched_algos::weighted::WeightedEftState;

    /// Drives a dispatcher over the stream, returning `max wᵢ·Fᵢ`.
    fn weighted_fmax<D: ImmediateDispatcher>(mut stream: WeightedBurstStream, d: &mut D) -> f64 {
        let mut worst: f64 = 0.0;
        while let Some((task, set)) = stream.next_arrival() {
            let a = d.dispatch_task(task, set);
            worst = worst.max(task.weight * (a.start + task.ptime - task.release));
        }
        worst
    }

    #[test]
    fn stream_shape_and_hint() {
        let mut s = WeightedBurstStream::new(4, 8, 16.0, 3);
        assert_eq!(s.len_hint(), Some(27));
        let mut weights = Vec::new();
        let mut releases = Vec::new();
        while let Some((task, set)) = s.next_arrival() {
            assert_eq!(set.len(), 4);
            weights.push(task.weight);
            releases.push(task.release);
        }
        assert_eq!(weights.len(), 27);
        // Each round: 8 lights then the heavy closer.
        assert!(weights[..8].iter().all(|&w| w == 1.0));
        assert_eq!(weights[8], 16.0);
        // Rounds drain before the next burst (gap = lights + 2).
        assert_eq!(releases[9], 10.0);
    }

    #[test]
    fn punishes_weight_oblivious_eft() {
        // The adversarial gap this stream exists to exhibit: plain EFT's
        // weighted Fmax strictly exceeds weighted-EFT's on every round.
        let (m, lights, w) = (4usize, 8usize, 16.0);
        let stream = || WeightedBurstStream::new(m, lights, w, 5);
        let mut eft = EftState::new(m, TieBreak::Min);
        let oblivious = weighted_fmax(stream(), &mut eft);
        // Slack covers the light stack so lights pack; the heavy's
        // budget slack/w is tight and takes the reserved idle machine.
        let mut weft = WeightedEftState::new(m, TieBreak::Min, lights as f64);
        let aware = weighted_fmax(stream(), &mut weft);
        // EFT balances: heavy starts behind lights/m = 2 → 16·3 = 48.
        assert_eq!(oblivious, 48.0);
        // Weighted-EFT keeps a reserve: heavy flows 1 → 16; lights
        // stack within their slack budget (flow ≤ lights/(m−1)+1).
        assert!(aware < oblivious, "aware {aware} vs oblivious {oblivious}");
        assert!(aware <= w + lights as f64);
    }
}
