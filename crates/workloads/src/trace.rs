//! Key-level request traces.
//!
//! The paper's Section 3 notes that "requests indicate which file to
//! retrieve based on a key that can be used multiple times", implying
//! many tasks share a processing set. This module generates traces at
//! that granularity: an explicit [`Keyspace`] with per-key Zipf
//! popularity, hashed onto owner machines, replicated by a
//! [`ReplicationStrategy`]. The machine-level model of
//! [`flowsched_kvstore::cluster`] is the aggregation of this one.

use flowsched_core::compact::ProcSetRef;
use flowsched_core::instance::{Instance, InstanceBuilder};
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;
use flowsched_kvstore::keyspace::Keyspace;
use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_stats::poisson::PoissonProcess;
use flowsched_stats::service::ServiceDist;
use rand::Rng;

/// Configuration of a key-level trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Cluster size.
    pub m: usize,
    /// Replication factor.
    pub k: usize,
    /// Replication strategy.
    pub strategy: ReplicationStrategy,
    /// Number of distinct keys.
    pub num_keys: usize,
    /// Zipf shape over key ranks.
    pub key_bias: f64,
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service-time distribution.
    pub service: ServiceDist,
}

/// A generated trace: the scheduling instance plus the key behind each
/// task (aligned with task indices).
#[derive(Debug, Clone)]
pub struct Trace {
    /// The scheduling instance.
    pub instance: Instance,
    /// Requested key per task.
    pub keys: Vec<usize>,
    /// The keyspace used.
    pub keyspace: Keyspace,
}

/// Generates `n` requests.
///
/// # Panics
/// Panics on degenerate configurations (zero keys, `k ∉ 1..=m`).
pub fn generate_trace(config: &TraceConfig, n: usize, rng: &mut impl Rng) -> Trace {
    assert!(config.k >= 1 && config.k <= config.m, "k must be in 1..=m");
    let keyspace = Keyspace::new(config.num_keys, config.m, config.key_bias);
    let mut arrivals = PoissonProcess::new(config.lambda);
    let mut b = InstanceBuilder::new(config.m);
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        let t = arrivals.next_arrival(rng);
        let key = keyspace.sample_key(rng);
        let owner = keyspace.owner(key);
        let set = config.strategy.replica_set(owner, config.k, config.m);
        b.push(Task::new(t, config.service.sample(rng)), set);
        keys.push(key);
    }
    Trace {
        instance: b.build().expect("traces are valid instances"),
        keys,
        keyspace,
    }
}

/// The streaming counterpart of [`generate_trace`]: the same requests,
/// one at a time, in `O(keys + 1)` live memory. Poisson arrivals are
/// cumulative, so releases are natively non-decreasing; per-request RNG
/// draws happen in the exact order of the batch generator (arrival, key,
/// service), so collecting the stream reproduces [`generate_trace`]'s
/// instance bit for bit from the same starting RNG. Replica sets are
/// lent as compact [`ProcSetRef`] ring/interval views
/// ([`ReplicationStrategy::replica_ref`]) — no per-request machine
/// vector is ever built, regardless of the replication factor.
#[derive(Debug)]
pub struct TraceStream<R> {
    k: usize,
    m: usize,
    strategy: ReplicationStrategy,
    service: ServiceDist,
    keyspace: Keyspace,
    arrivals: PoissonProcess,
    rng: R,
    remaining: usize,
    last_key: usize,
}

impl<R: Rng> TraceStream<R> {
    /// Streams `n` requests drawn from `rng`.
    ///
    /// # Panics
    /// Panics on degenerate configurations (zero keys, `k ∉ 1..=m`).
    pub fn new(config: &TraceConfig, n: usize, rng: R) -> Self {
        assert!(config.k >= 1 && config.k <= config.m, "k must be in 1..=m");
        TraceStream {
            k: config.k,
            m: config.m,
            strategy: config.strategy,
            service: config.service,
            keyspace: Keyspace::new(config.num_keys, config.m, config.key_bias),
            arrivals: PoissonProcess::new(config.lambda),
            rng,
            remaining: n,
            last_key: 0,
        }
    }

    /// The keyspace behind the requests.
    pub fn keyspace(&self) -> &Keyspace {
        &self.keyspace
    }

    /// Key of the most recently emitted request.
    pub fn last_key(&self) -> usize {
        self.last_key
    }
}

impl<R: Rng> ArrivalStream for TraceStream<R> {
    fn machines(&self) -> usize {
        self.m
    }

    fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let t = self.arrivals.next_arrival(&mut self.rng);
        let key = self.keyspace.sample_key(&mut self.rng);
        let owner = self.keyspace.owner(key);
        self.last_key = key;
        let set = self.strategy.replica_ref(owner, self.k, self.m);
        Some((Task::new(t, self.service.sample(&mut self.rng)), set))
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_stats::rng::seeded_rng;

    fn config() -> TraceConfig {
        TraceConfig {
            m: 9,
            k: 3,
            strategy: ReplicationStrategy::Overlapping,
            num_keys: 300,
            key_bias: 1.0,
            lambda: 4.0,
            service: ServiceDist::unit(),
        }
    }

    #[test]
    fn tasks_align_with_keys_and_owners() {
        let mut rng = seeded_rng(1);
        let trace = generate_trace(&config(), 500, &mut rng);
        assert_eq!(trace.instance.len(), 500);
        assert_eq!(trace.keys.len(), 500);
        for (i, &key) in trace.keys.iter().enumerate() {
            let owner = trace.keyspace.owner(key);
            let set = trace.instance.set(flowsched_core::TaskId(i));
            assert!(set.contains(owner), "task {i}: owner {owner} not in {set}");
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn repeated_keys_share_processing_sets() {
        // The Section 3 observation: tasks for the same key have the same
        // processing set.
        let mut rng = seeded_rng(2);
        let trace = generate_trace(&config(), 2000, &mut rng);
        use std::collections::HashMap;
        let mut by_key: HashMap<usize, &flowsched_core::ProcSet> = HashMap::new();
        for (i, &key) in trace.keys.iter().enumerate() {
            let set = trace.instance.set(flowsched_core::TaskId(i));
            if let Some(prev) = by_key.get(&key) {
                assert_eq!(*prev, set, "key {key} changed sets");
            }
            by_key.insert(key, set);
        }
        // Popular keys repeat a lot under Zipf(1) over 300 keys.
        assert!(by_key.len() < 2000);
    }

    #[test]
    fn key_bias_induces_machine_bias() {
        // Strong key bias concentrates the induced machine load.
        let mut rng = seeded_rng(3);
        let hot = TraceConfig {
            key_bias: 2.5,
            ..config()
        };
        let trace = generate_trace(&hot, 5000, &mut rng);
        let mut owner_counts = vec![0usize; 9];
        for &key in &trace.keys {
            owner_counts[trace.keyspace.owner(key)] += 1;
        }
        let max = *owner_counts.iter().max().unwrap() as f64;
        let expected_uniform = 5000.0 / 9.0;
        assert!(
            max > 2.0 * expected_uniform,
            "no concentration: {owner_counts:?}"
        );
    }

    #[test]
    fn trace_is_schedulable() {
        use flowsched_algos::{eft, TieBreak};
        let mut rng = seeded_rng(4);
        let trace = generate_trace(&config(), 800, &mut rng);
        let s = eft(&trace.instance, TieBreak::Min);
        s.validate(&trace.instance).unwrap();
    }

    #[test]
    fn stream_replays_the_batch_generator_exactly() {
        // Same starting RNG ⇒ the stream's RNG draw order (arrival, key,
        // service) reproduces generate_trace bit for bit.
        let cfg = config();
        let batch = generate_trace(&cfg, 300, &mut seeded_rng(8));
        let streamed =
            flowsched_core::stream::collect_stream(TraceStream::new(&cfg, 300, seeded_rng(8)))
                .unwrap();
        assert_eq!(streamed, batch.instance);
    }

    #[test]
    fn stream_exposes_keys_as_it_goes() {
        let cfg = config();
        let batch = generate_trace(&cfg, 100, &mut seeded_rng(9));
        let mut s = TraceStream::new(&cfg, 100, seeded_rng(9));
        let mut keys = Vec::new();
        while s.next_arrival().is_some() {
            keys.push(s.last_key());
        }
        assert_eq!(keys, batch.keys);
        assert_eq!(s.len_hint(), Some(0));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = seeded_rng(5);
        let mut r2 = seeded_rng(5);
        let a = generate_trace(&config(), 100, &mut r1);
        let b = generate_trace(&config(), 100, &mut r2);
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.keys, b.keys);
    }
}
