//! # flowsched-workloads
//!
//! Workload generators: the paper's lower-bound adversaries and random
//! instance families.
//!
//! - [`adversary`]: one module per theorem —
//!   - Theorem 3 (inclusive sets, immediate dispatch, `≥ ⌊log₂ m + 1⌋`),
//!   - Theorem 4 (size-`k` sets, immediate dispatch, `≥ ⌊log_k m⌋`),
//!   - Theorem 5 (nested sets, any online, `≥ ⅓⌊log₂ m + 2⌋`),
//!   - Theorem 7 (size-`k` intervals, any online, `≥ 2`),
//!   - Theorem 8/9 (size-`k` intervals, EFT-Min / EFT-Rand,
//!     `≥ m − k + 1`),
//!   - Theorem 10 (the `δ/ε` small-task padding extending Theorem 8 to
//!     every tie-break policy).
//!
//!   Adaptive adversaries drive any
//!   [`ImmediateDispatcher`](flowsched_algos::ImmediateDispatcher).
//!   Each one is a sink-generic `drive_*` core over a
//!   [`ReleaseSink`](outcome::ReleaseSink): the `run_*` wrappers
//!   materialize an [`AdversaryOutcome`] (instance + schedule + the
//!   paper's offline optimum); the `run_*_streaming` wrappers fold only
//!   the running `Fmax` in O(1) memory. The oblivious constructions
//!   (Theorem 8's stream, the generalized staircase) double as
//!   [`ArrivalStream`](flowsched_core::ArrivalStream)s for the shared
//!   engines.
//!
//! - [`faults`]: seeded random [`FaultPlan`](flowsched_core::FaultPlan)
//!   generation — per-machine Poisson crash/recover processes, degraded
//!   speeds, dispatch latency — for the fault-injection layer.
//! - [`random`]: seeded random workloads over every structure class, for
//!   property tests and benchmarks — materialized ([`random_instance`])
//!   or as a constant-memory Poisson stream ([`PoissonStream`]).
//! - [`trace`]: key-level request traces (explicit keyspace, per-key Zipf
//!   popularity, replication by strategy) — the fine-grained model whose
//!   aggregation is the paper's machine-level popularity; batch
//!   ([`generate_trace`]) or streaming ([`TraceStream`]).
//! - [`weighted`]: the light-burst-then-heavy stream punishing
//!   weight-oblivious dispatch under the weighted max flow objective
//!   ([`WeightedBurstStream`]).
//! - [`setup_thrash`]: interleaved overlapping key clusters forcing a
//!   setup-oblivious dispatcher to pay the switch cost on nearly every
//!   task ([`SetupThrashStream`]).

pub mod adversary;
pub mod faults;
pub mod outcome;
pub mod random;
pub mod setup_thrash;
pub mod trace;
pub mod weighted;

pub use adversary::fixed_size::{fixed_size_adversary, fixed_size_adversary_streaming};
pub use adversary::inclusive::{inclusive_adversary, inclusive_adversary_streaming};
pub use adversary::interval::{
    interval_adversary_instance, run_interval_adversary, run_interval_adversary_streaming,
    IntervalAdversaryStream,
};
pub use adversary::nested::{nested_adversary, nested_adversary_streaming};
pub use adversary::padded::{padded_interval_adversary, padded_interval_adversary_streaming};
pub use adversary::search::{exhaustive_worst_ratio, greedy_adversary_stream, interval_types};
pub use adversary::staircase::{
    run_staircase, run_staircase_streaming, run_staircase_with_exact_opt, staircase_round,
    StaircaseStream,
};
pub use adversary::theorem7::{theorem7_adversary, theorem7_adversary_streaming};
pub use faults::{random_fault_plan, FaultPlanConfig};
pub use outcome::{AdversaryOutcome, ReleaseLog, ReleaseSink, StreamingLog, StreamingOutcome};
pub use random::{
    random_instance, PoissonStream, PoissonStreamConfig, RandomInstanceConfig, StructureKind,
};
pub use setup_thrash::SetupThrashStream;
pub use trace::{generate_trace, Trace, TraceConfig, TraceStream};
pub use weighted::WeightedBurstStream;
