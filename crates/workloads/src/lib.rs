//! # flowsched-workloads
//!
//! Workload generators: the paper's lower-bound adversaries and random
//! instance families.
//!
//! - [`adversary`]: one module per theorem —
//!   - Theorem 3 (inclusive sets, immediate dispatch, `≥ ⌊log₂ m + 1⌋`),
//!   - Theorem 4 (size-`k` sets, immediate dispatch, `≥ ⌊log_k m⌋`),
//!   - Theorem 5 (nested sets, any online, `≥ ⅓⌊log₂ m + 2⌋`),
//!   - Theorem 7 (size-`k` intervals, any online, `≥ 2`),
//!   - Theorem 8/9 (size-`k` intervals, EFT-Min / EFT-Rand,
//!     `≥ m − k + 1`),
//!   - Theorem 10 (the `δ/ε` small-task padding extending Theorem 8 to
//!     every tie-break policy).
//!
//!   Adaptive adversaries drive any
//!   [`ImmediateDispatcher`](flowsched_algos::ImmediateDispatcher) and
//!   return an [`AdversaryOutcome`] pairing the constructed instance, the
//!   schedule the algorithm produced, and the offline optimum the paper
//!   states for that construction.
//!
//! - [`random`]: seeded random instances over every structure class, for
//!   property tests and benchmarks.
//! - [`trace`]: key-level request traces (explicit keyspace, per-key Zipf
//!   popularity, replication by strategy) — the fine-grained model whose
//!   aggregation is the paper's machine-level popularity.

pub mod adversary;
pub mod outcome;
pub mod random;
pub mod trace;

pub use adversary::fixed_size::fixed_size_adversary;
pub use adversary::inclusive::inclusive_adversary;
pub use adversary::interval::{interval_adversary_instance, run_interval_adversary};
pub use adversary::nested::nested_adversary;
pub use adversary::padded::padded_interval_adversary;
pub use adversary::search::{exhaustive_worst_ratio, greedy_adversary_stream, interval_types};
pub use adversary::staircase::{run_staircase, run_staircase_with_exact_opt, staircase_round};
pub use adversary::theorem7::theorem7_adversary;
pub use outcome::AdversaryOutcome;
pub use random::{RandomInstanceConfig, StructureKind, random_instance};
pub use trace::{Trace, TraceConfig, generate_trace};
