//! Shared plumbing for adversary constructions.
//!
//! Every adversary is written once as a sink-generic `drive_*` core that
//! releases tasks through a [`ReleaseSink`]. Two sinks exist: the
//! materializing [`ReleaseLog`] (assembles the full
//! `(Instance, Schedule)` pair for structural assertions and exact-OPT
//! cross-checks) and the constant-memory [`StreamingLog`] (folds only the
//! running `Fmax`), so arbitrarily long adversary runs need `O(1)` space.

use flowsched_core::instance::Instance;
use flowsched_core::procset::ProcSet;
use flowsched_core::schedule::{Assignment, Schedule};
use flowsched_core::task::Task;
use flowsched_core::time::Time;

use flowsched_algos::eft::ImmediateDispatcher;

/// Result of running an adversary against an online algorithm.
#[derive(Debug, Clone)]
pub struct AdversaryOutcome {
    /// The instance the adversary constructed (possibly adaptively).
    pub instance: Instance,
    /// The schedule the algorithm produced on it.
    pub schedule: Schedule,
    /// Offline optimal `F*max` of the instance, as established by the
    /// paper's construction (not recomputed).
    pub opt_fmax: Time,
}

impl AdversaryOutcome {
    /// The algorithm's maximum flow time on the adversarial instance.
    pub fn fmax(&self) -> Time {
        self.schedule.fmax(&self.instance)
    }

    /// Achieved competitive ratio `Fmax / F*max`.
    pub fn ratio(&self) -> f64 {
        self.fmax() / self.opt_fmax
    }

    /// Validates the produced schedule against the instance.
    pub fn validate(&self) -> Result<(), flowsched_core::CoreError> {
        self.schedule.validate(&self.instance)
    }
}

/// Where an adversary's released tasks go: either materialized
/// ([`ReleaseLog`]) or folded online ([`StreamingLog`]). The `drive_*`
/// adversary cores are generic over this, so one construction serves both
/// the exact batch outcome and O(1)-memory streaming runs.
pub trait ReleaseSink {
    /// Releases a task to the algorithm and records the commitment.
    /// Releases must be non-decreasing (online arrival order).
    fn release<D: ImmediateDispatcher + ?Sized>(
        &mut self,
        algo: &mut D,
        task: Task,
        set: ProcSet,
    ) -> Assignment;
}

/// Records tasks as an adaptive adversary releases them, together with
/// the assignments the algorithm commits to, and assembles the final
/// `(Instance, Schedule)` pair.
#[derive(Debug, Default)]
pub struct ReleaseLog {
    m: usize,
    tasks: Vec<Task>,
    sets: Vec<ProcSet>,
    assignments: Vec<Assignment>,
    last_release: Time,
}

impl ReleaseLog {
    /// Starts a log for an `m`-machine cluster.
    pub fn new(m: usize) -> Self {
        ReleaseLog {
            m,
            tasks: Vec::new(),
            sets: Vec::new(),
            assignments: Vec::new(),
            last_release: 0.0,
        }
    }

    /// Releases a task to the algorithm and records the commitment.
    /// Releases must be non-decreasing (online arrival order).
    pub fn release<D: ImmediateDispatcher + ?Sized>(
        &mut self,
        algo: &mut D,
        task: Task,
        set: ProcSet,
    ) -> Assignment {
        assert!(
            task.release >= self.last_release,
            "adversary must release tasks in non-decreasing time order"
        );
        self.last_release = task.release;
        let a = algo.dispatch_task(task, set.view());
        self.tasks.push(task);
        self.sets.push(set);
        self.assignments.push(a);
        a
    }

    /// Number of tasks released so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when nothing was released.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Finalizes into an outcome with the paper-provided optimum.
    pub fn finish(self, opt_fmax: Time) -> AdversaryOutcome {
        let instance = Instance::new(self.m, self.tasks, self.sets)
            .expect("adversary constructions are valid instances");
        let schedule = Schedule::new(self.assignments);
        AdversaryOutcome {
            instance,
            schedule,
            opt_fmax,
        }
    }
}

impl ReleaseSink for ReleaseLog {
    fn release<D: ImmediateDispatcher + ?Sized>(
        &mut self,
        algo: &mut D,
        task: Task,
        set: ProcSet,
    ) -> Assignment {
        ReleaseLog::release(self, algo, task, set)
    }
}

/// The constant-memory sink: folds the running maximum flow over the
/// released tasks and keeps nothing else. Arbitrarily long adversary runs
/// through this sink never materialize an instance or schedule.
#[derive(Debug, Clone, Default)]
pub struct StreamingLog {
    tasks: usize,
    fmax: Time,
    last_release: Time,
}

impl StreamingLog {
    /// Starts an empty fold.
    pub fn new() -> Self {
        StreamingLog::default()
    }

    /// Number of tasks released so far.
    pub fn len(&self) -> usize {
        self.tasks
    }

    /// True when nothing was released.
    pub fn is_empty(&self) -> bool {
        self.tasks == 0
    }

    /// Maximum flow over the tasks released so far.
    pub fn fmax(&self) -> Time {
        self.fmax
    }

    /// Finalizes into a streaming outcome with the paper-provided optimum.
    pub fn finish(self, opt_fmax: Time) -> StreamingOutcome {
        StreamingOutcome {
            tasks: self.tasks,
            fmax: self.fmax,
            opt_fmax,
        }
    }
}

impl ReleaseSink for StreamingLog {
    fn release<D: ImmediateDispatcher + ?Sized>(
        &mut self,
        algo: &mut D,
        task: Task,
        set: ProcSet,
    ) -> Assignment {
        assert!(
            task.release >= self.last_release,
            "adversary must release tasks in non-decreasing time order"
        );
        self.last_release = task.release;
        let a = algo.dispatch_task(task, set.view());
        self.tasks += 1;
        let flow = a.start + task.ptime - task.release;
        if flow > self.fmax {
            self.fmax = flow;
        }
        a
    }
}

/// Result of a streaming adversary run — the aggregates of
/// [`AdversaryOutcome`] without the materialized instance and schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingOutcome {
    /// Number of tasks the adversary released.
    pub tasks: usize,
    /// The algorithm's maximum flow time on the adversarial stream.
    pub fmax: Time,
    /// Offline optimal `F*max`, as established by the paper's
    /// construction (not recomputed).
    pub opt_fmax: Time,
}

impl StreamingOutcome {
    /// Achieved competitive ratio `Fmax / F*max`.
    pub fn ratio(&self) -> f64 {
        self.fmax / self.opt_fmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::EftState;
    use flowsched_algos::tiebreak::TieBreak;

    #[test]
    fn log_assembles_consistent_outcome() {
        let mut algo = EftState::new(2, TieBreak::Min);
        let mut log = ReleaseLog::new(2);
        log.release(&mut algo, Task::unit(0.0), ProcSet::full(2));
        log.release(&mut algo, Task::unit(0.0), ProcSet::full(2));
        log.release(&mut algo, Task::unit(1.0), ProcSet::singleton(0));
        assert_eq!(log.len(), 3);
        let out = log.finish(1.0);
        out.validate().unwrap();
        assert_eq!(out.fmax(), 1.0);
        assert_eq!(out.ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_release_rejected() {
        let mut algo = EftState::new(1, TieBreak::Min);
        let mut log = ReleaseLog::new(1);
        log.release(&mut algo, Task::unit(5.0), ProcSet::full(1));
        log.release(&mut algo, Task::unit(1.0), ProcSet::full(1));
    }

    #[test]
    fn streaming_log_folds_the_same_fmax() {
        // Drive the same releases through both sinks; the streaming fold
        // must agree with the materialized schedule's Fmax.
        let releases = [
            (Task::unit(0.0), ProcSet::full(2)),
            (Task::unit(0.0), ProcSet::full(2)),
            (Task::unit(0.0), ProcSet::singleton(1)),
            (Task::new(1.0, 2.5), ProcSet::singleton(1)),
        ];
        let mut batch_algo = EftState::new(2, TieBreak::Min);
        let mut log = ReleaseLog::new(2);
        let mut stream_algo = EftState::new(2, TieBreak::Min);
        let mut fold = StreamingLog::new();
        for (task, set) in releases {
            let a = log.release(&mut batch_algo, task, set.clone());
            let b = ReleaseSink::release(&mut fold, &mut stream_algo, task, set);
            assert_eq!(a, b);
        }
        assert_eq!(fold.len(), log.len());
        let streamed = fold.finish(1.0);
        let out = log.finish(1.0);
        assert_eq!(streamed.fmax, out.fmax());
        assert_eq!(streamed.ratio(), out.ratio());
        assert_eq!(streamed.tasks, out.instance.len());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn streaming_out_of_order_release_rejected() {
        let mut algo = EftState::new(1, TieBreak::Min);
        let mut fold = StreamingLog::new();
        ReleaseSink::release(&mut fold, &mut algo, Task::unit(5.0), ProcSet::full(1));
        ReleaseSink::release(&mut fold, &mut algo, Task::unit(1.0), ProcSet::full(1));
    }
}
