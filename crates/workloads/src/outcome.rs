//! Shared plumbing for adversary constructions.

use flowsched_core::instance::Instance;
use flowsched_core::procset::ProcSet;
use flowsched_core::schedule::{Assignment, Schedule};
use flowsched_core::task::Task;
use flowsched_core::time::Time;

use flowsched_algos::eft::ImmediateDispatcher;

/// Result of running an adversary against an online algorithm.
#[derive(Debug, Clone)]
pub struct AdversaryOutcome {
    /// The instance the adversary constructed (possibly adaptively).
    pub instance: Instance,
    /// The schedule the algorithm produced on it.
    pub schedule: Schedule,
    /// Offline optimal `F*max` of the instance, as established by the
    /// paper's construction (not recomputed).
    pub opt_fmax: Time,
}

impl AdversaryOutcome {
    /// The algorithm's maximum flow time on the adversarial instance.
    pub fn fmax(&self) -> Time {
        self.schedule.fmax(&self.instance)
    }

    /// Achieved competitive ratio `Fmax / F*max`.
    pub fn ratio(&self) -> f64 {
        self.fmax() / self.opt_fmax
    }

    /// Validates the produced schedule against the instance.
    pub fn validate(&self) -> Result<(), flowsched_core::CoreError> {
        self.schedule.validate(&self.instance)
    }
}

/// Records tasks as an adaptive adversary releases them, together with
/// the assignments the algorithm commits to, and assembles the final
/// `(Instance, Schedule)` pair.
#[derive(Debug, Default)]
pub struct ReleaseLog {
    m: usize,
    tasks: Vec<Task>,
    sets: Vec<ProcSet>,
    assignments: Vec<Assignment>,
    last_release: Time,
}

impl ReleaseLog {
    /// Starts a log for an `m`-machine cluster.
    pub fn new(m: usize) -> Self {
        ReleaseLog { m, tasks: Vec::new(), sets: Vec::new(), assignments: Vec::new(), last_release: 0.0 }
    }

    /// Releases a task to the algorithm and records the commitment.
    /// Releases must be non-decreasing (online arrival order).
    pub fn release<D: ImmediateDispatcher>(
        &mut self,
        algo: &mut D,
        task: Task,
        set: ProcSet,
    ) -> Assignment {
        assert!(
            task.release >= self.last_release,
            "adversary must release tasks in non-decreasing time order"
        );
        self.last_release = task.release;
        let a = algo.dispatch_task(task, &set);
        self.tasks.push(task);
        self.sets.push(set);
        self.assignments.push(a);
        a
    }

    /// Number of tasks released so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when nothing was released.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Finalizes into an outcome with the paper-provided optimum.
    pub fn finish(self, opt_fmax: Time) -> AdversaryOutcome {
        let instance = Instance::new(self.m, self.tasks, self.sets)
            .expect("adversary constructions are valid instances");
        let schedule = Schedule::new(self.assignments);
        AdversaryOutcome { instance, schedule, opt_fmax }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::EftState;
    use flowsched_algos::tiebreak::TieBreak;

    #[test]
    fn log_assembles_consistent_outcome() {
        let mut algo = EftState::new(2, TieBreak::Min);
        let mut log = ReleaseLog::new(2);
        log.release(&mut algo, Task::unit(0.0), ProcSet::full(2));
        log.release(&mut algo, Task::unit(0.0), ProcSet::full(2));
        log.release(&mut algo, Task::unit(1.0), ProcSet::singleton(0));
        assert_eq!(log.len(), 3);
        let out = log.finish(1.0);
        out.validate().unwrap();
        assert_eq!(out.fmax(), 1.0);
        assert_eq!(out.ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_release_rejected() {
        let mut algo = EftState::new(1, TieBreak::Min);
        let mut log = ReleaseLog::new(1);
        log.release(&mut algo, Task::unit(5.0), ProcSet::full(1));
        log.release(&mut algo, Task::unit(1.0), ProcSet::full(1));
    }
}
