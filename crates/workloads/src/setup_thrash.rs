//! Adversarial workload for **setup-aware** dispatch (Mäcker et al.,
//! arXiv:1709.05896): interleaved requests from overlapping key
//! clusters that force a setup-oblivious dispatcher to thrash.
//!
//! The stream cycles through `clusters` overlapping replica sets —
//! interval `[c·stride, c·stride + width)` for cluster `c`, one unit
//! task per cluster per time step. Because consecutive clusters share
//! `width − stride` machines, a setup-oblivious EFT
//! ([`flowsched_algos::SetupEftState`] with `aware = false`) happily
//! routes alternating clusters onto the shared machines — paying the
//! switch cost on almost every dispatch — while the aware variant
//! settles each cluster onto its exclusive machines and amortizes the
//! setup away. The stream is the empirical teeth behind the `setup@c`
//! vs `setup-obl@c` rows of the competitive-ratio ladder.

use flowsched_core::compact::ProcSetRef;
use flowsched_core::procset::ProcSet;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;

/// The cluster-interleaving adversarial stream (module docs).
#[derive(Debug, Clone)]
pub struct SetupThrashStream {
    m: usize,
    sets: Vec<ProcSet>,
    steps: usize,
    t: usize,
    i: usize,
}

impl SetupThrashStream {
    /// `steps` rounds of one unit task per cluster, clusters being the
    /// overlapping intervals `[c·stride, c·stride + width)` over `m`
    /// machines.
    ///
    /// # Panics
    /// Panics when the geometry is degenerate: no clusters, zero
    /// width/stride, non-overlapping clusters (`stride ≥ width` — there
    /// would be nothing to thrash), or clusters falling off the machine
    /// range.
    pub fn new(m: usize, clusters: usize, width: usize, stride: usize, steps: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        assert!(width > 0 && stride > 0, "need a positive cluster geometry");
        assert!(
            stride < width,
            "clusters must overlap (stride < width) to induce thrashing"
        );
        let sets: Vec<ProcSet> = (0..clusters)
            .map(|c| ProcSet::interval(c * stride, c * stride + width - 1))
            .collect();
        assert!(
            sets.iter().all(|s| s.max().is_some_and(|hi| hi < m)),
            "clusters must fit the machine range"
        );
        SetupThrashStream {
            m,
            sets,
            steps,
            t: 0,
            i: 0,
        }
    }

    /// The cluster replica sets, in release order within a step.
    pub fn clusters(&self) -> &[ProcSet] {
        &self.sets
    }
}

impl ArrivalStream for SetupThrashStream {
    fn machines(&self) -> usize {
        self.m
    }

    fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
        if self.t >= self.steps {
            return None;
        }
        let task = Task::unit(self.t as f64);
        let i = self.i;
        self.i += 1;
        if self.i == self.sets.len() {
            self.i = 0;
            self.t += 1;
        }
        Some((task, self.sets[i].compact_view()))
    }

    fn len_hint(&self) -> Option<usize> {
        Some((self.steps - self.t) * self.sets.len() - self.i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_algos::eft::ImmediateDispatcher;
    use flowsched_algos::setup::SetupEftState;
    use flowsched_algos::tiebreak::TieBreak;

    fn fmax<D: ImmediateDispatcher>(mut stream: SetupThrashStream, d: &mut D) -> f64 {
        let mut worst: f64 = 0.0;
        while let Some((task, set)) = stream.next_arrival() {
            let a = d.dispatch_task(task, set);
            worst = worst.max(a.start + task.ptime - task.release);
        }
        worst
    }

    #[test]
    fn stream_shape_and_hint() {
        let mut s = SetupThrashStream::new(6, 3, 3, 1, 4);
        assert_eq!(s.clusters().len(), 3);
        assert_eq!(s.len_hint(), Some(12));
        let mut count = 0;
        while let Some((task, set)) = s.next_arrival() {
            assert_eq!(set.len(), 3);
            assert_eq!(task.release, (count / 3) as f64);
            count += 1;
        }
        assert_eq!(count, 12);
    }

    #[test]
    fn oblivious_dispatch_thrashes_and_aware_does_not() {
        // Two width-4 clusters overlapping in 3 machines on m=5: the
        // oblivious EFT choice keeps landing alternating clusters on
        // shared machines (a switch — and a setup — almost every time),
        // while the aware variant parks each cluster on its exclusive
        // machine and stops paying after warm-up.
        let stream = || SetupThrashStream::new(5, 2, 4, 1, 30);
        let cost = 2.0;
        let mut obl = SetupEftState::new(5, TieBreak::Min, cost, false);
        let thrashed = fmax(stream(), &mut obl);
        let mut aware = SetupEftState::new(5, TieBreak::Min, cost, true);
        let settled = fmax(stream(), &mut aware);
        assert!(
            settled < thrashed,
            "aware {settled} should beat oblivious {thrashed}"
        );
        // Once settled, the aware flow is setup-free: bounded by the
        // cold-start cost plus the service backlog of one cluster.
        assert!(settled <= cost + 2.0, "settled flow {settled}");
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn disjoint_clusters_rejected() {
        let _ = SetupThrashStream::new(8, 2, 2, 4, 1);
    }
}
