//! Service-time sensitivity: the paper simulates unit tasks only
//! (Section 7.4); its introduction notes that real requests "vary in
//! size". This experiment re-runs the Figure 11 comparison with three
//! service-time distributions of equal mean — deterministic (the paper's
//! setting), exponential, and a bimodal mice-and-elephants mix — to test
//! whether the overlapping-replication advantage survives service-time
//! variability.

use flowsched_algos::tiebreak::TieBreak;
use flowsched_kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_parallel::par_map;
use flowsched_sim::driver::{simulate, SimConfig};
use flowsched_stats::descriptive::median;
use flowsched_stats::rng::derive_rng;
use flowsched_stats::service::ServiceDist;
use flowsched_stats::zipf::BiasCase;
use serde::Serialize;

use crate::scale::Scale;
use crate::table::TableBuilder;

/// One (distribution, strategy, load) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceRow {
    /// Distribution label.
    pub dist: String,
    /// Squared coefficient of variation of the service distribution.
    pub scv: f64,
    /// Strategy label.
    pub strategy: String,
    /// Offered load (% of capacity).
    pub load_pct: f64,
    /// Median maximum flow time.
    pub fmax_median: f64,
    /// Median 99th-percentile flow.
    pub p99_median: f64,
    /// Median maximum stretch (slowdown).
    pub max_stretch_median: f64,
}

fn dists() -> [(&'static str, ServiceDist); 3] {
    [
        ("deterministic", ServiceDist::unit()),
        ("exponential", ServiceDist::exp_unit()),
        ("bimodal", ServiceDist::mice_and_elephants()),
    ]
}

/// Loads swept (% of capacity) — kept below the Shuffled s=1 max-load
/// knee of the disjoint strategy so curves stay comparable.
pub const LOADS: [f64; 3] = [25.0, 40.0, 50.0];

/// Runs the sweep (Shuffled case, s = 1, EFT-Min).
pub fn run(scale: &Scale) -> Vec<ServiceRow> {
    let mut jobs = Vec::new();
    for (label, dist) in dists() {
        for strategy in ReplicationStrategy::all() {
            for load in LOADS {
                jobs.push((label, dist, strategy, load));
            }
        }
    }
    par_map(&jobs, |&(label, dist, strategy, load)| {
        let lambda = load / 100.0 * scale.m as f64;
        let mut fmaxes = Vec::new();
        let mut p99s = Vec::new();
        let mut stretches = Vec::new();
        for rep in 0..scale.repetitions {
            let mut rng = derive_rng(
                scale.seed,
                0x5E11 ^ ((rep as u64) << 24) ^ ((load as u64) << 8) ^ label.len() as u64,
            );
            let cluster = KvCluster::new(
                ClusterConfig {
                    m: scale.m,
                    k: scale.k,
                    strategy,
                    s: 1.0,
                    case: BiasCase::Shuffled,
                },
                &mut rng,
            );
            let inst = cluster.requests_with_service(scale.tasks, lambda, dist, &mut rng);
            let (_, report) = simulate(
                &inst,
                &SimConfig {
                    policy: TieBreak::Min,
                    warmup_fraction: 0.1,
                },
            );
            fmaxes.push(report.fmax);
            p99s.push(report.p99);
            stretches.push(report.max_stretch);
        }
        ServiceRow {
            dist: label.to_string(),
            scv: dist.scv(),
            strategy: strategy.to_string(),
            load_pct: load,
            fmax_median: median(&fmaxes),
            p99_median: median(&p99s),
            max_stretch_median: median(&stretches),
        }
    })
}

/// Renders the sweep.
pub fn render(rows: &[ServiceRow]) -> String {
    let mut t = TableBuilder::new(&[
        "distribution",
        "scv",
        "strategy",
        "load %",
        "Fmax",
        "p99",
        "max stretch",
    ]);
    for r in rows {
        t.row(vec![
            r.dist.clone(),
            format!("{:.2}", r.scv),
            r.strategy.clone(),
            format!("{:.0}", r.load_pct),
            format!("{:.1}", r.fmax_median),
            format!("{:.1}", r.p99_median),
            format!("{:.1}", r.max_stretch_median),
        ]);
    }
    format!(
        "Service-time sensitivity — beyond the paper's unit tasks\n\
         (Shuffled case, s = 1, equal-mean service distributions, EFT-Min):\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            m: 8,
            k: 3,
            permutations: 4,
            repetitions: 2,
            tasks: 800,
            bias_step: 1.0,
            seed: 6,
        }
    }

    #[test]
    fn grid_is_complete() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 3 * 2 * LOADS.len());
    }

    #[test]
    fn overlapping_advantage_survives_variability() {
        // The headline question: at the top load, overlapping must not be
        // worse than disjoint for any distribution.
        let rows = run(&tiny());
        for dist in ["deterministic", "exponential", "bimodal"] {
            let get = |strategy: &str| {
                rows.iter()
                    .find(|r| r.dist == dist && r.strategy == strategy && r.load_pct == 50.0)
                    .unwrap()
                    .fmax_median
            };
            assert!(
                get("Overlapping") <= get("Disjoint") * 1.5,
                "{dist}: overlapping {o} vs disjoint {d}",
                o = get("Overlapping"),
                d = get("Disjoint")
            );
        }
    }

    #[test]
    fn higher_scv_does_not_improve_tails() {
        // At the same load/strategy, p99 should not get *better* as the
        // service variability rises (deterministic → bimodal).
        let rows = run(&tiny());
        let get = |dist: &str| {
            rows.iter()
                .find(|r| r.dist == dist && r.strategy == "Overlapping" && r.load_pct == 50.0)
                .unwrap()
                .p99_median
        };
        assert!(get("bimodal") >= get("deterministic") * 0.8);
    }

    #[test]
    fn stretch_exceeds_flow_under_bimodal() {
        // Mice behind elephants: max stretch far exceeds what unit tasks
        // would show (where stretch == flow).
        let rows = run(&tiny());
        let bimodal = rows
            .iter()
            .find(|r| r.dist == "bimodal" && r.strategy == "Overlapping" && r.load_pct == 50.0)
            .unwrap();
        assert!(
            bimodal.max_stretch_median > bimodal.fmax_median / 2.0,
            "{bimodal:?}"
        );
    }

    #[test]
    fn render_covers_distributions() {
        let s = render(&run(&tiny()));
        for d in ["deterministic", "exponential", "bimodal"] {
            assert!(s.contains(d));
        }
    }
}
