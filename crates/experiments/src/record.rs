//! Machine-readable experiment records (JSON), so EXPERIMENTS.md numbers
//! are regenerable and diffable run to run.

use serde::Serialize;

/// A complete experiment record: what ran, with which parameters, and
/// the typed result rows.
#[derive(Debug, Clone, Serialize)]
pub struct Record<T: Serialize> {
    /// Experiment identifier (e.g. `fig10a`, `table2`).
    pub experiment: String,
    /// Scale parameters used.
    pub scale: ScaleRecord,
    /// Result rows.
    pub rows: T,
}

/// Serializable snapshot of a [`crate::Scale`].
#[derive(Debug, Clone, Serialize)]
pub struct ScaleRecord {
    /// Machines.
    pub m: usize,
    /// Replication factor.
    pub k: usize,
    /// Permutations.
    pub permutations: usize,
    /// Repetitions.
    pub repetitions: usize,
    /// Tasks per run.
    pub tasks: usize,
    /// Root seed.
    pub seed: u64,
}

impl From<&crate::Scale> for ScaleRecord {
    fn from(s: &crate::Scale) -> Self {
        ScaleRecord {
            m: s.m,
            k: s.k,
            permutations: s.permutations,
            repetitions: s.repetitions,
            tasks: s.tasks,
            seed: s.seed,
        }
    }
}

/// Wraps rows into a [`Record`] and serializes to pretty JSON.
///
/// # Panics
/// Panics if serialization fails (all experiment row types are plain
/// data; failure indicates a programming error).
pub fn to_json<T: Serialize>(experiment: &str, scale: &crate::Scale, rows: T) -> String {
    let record = Record {
        experiment: experiment.to_string(),
        scale: scale.into(),
        rows,
    };
    serde_json::to_string_pretty(&record).expect("experiment rows serialize")
}

/// Writes a record to a file, creating parent directories.
pub fn write_json<T: Serialize>(
    path: &std::path::Path,
    experiment: &str,
    scale: &crate::Scale,
    rows: T,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_json(experiment, scale, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn json_round_trips_scale_and_rows() {
        let scale = Scale::quick();
        let rows = vec![1.0, 2.5];
        let json = to_json("demo", &scale, &rows);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["experiment"], "demo");
        assert_eq!(value["scale"]["m"], 15);
        assert_eq!(value["rows"][1], 2.5);
    }

    #[test]
    fn write_creates_directories() {
        let dir = std::env::temp_dir().join("flowsched-record-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.json");
        write_json(&path, "t", &Scale::quick(), vec![1u32]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"t\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn typed_rows_serialize() {
        let scale = Scale::quick();
        let rows = crate::fig08::run(scale.seed);
        let json = to_json("fig08", &scale, &rows);
        assert!(json.contains("Uniform"));
    }
}
