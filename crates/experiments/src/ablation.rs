//! Ablation: tie-break policy × replication strategy beyond the pairs the
//! paper plots, at a fixed operating point (Shuffled case, s = 1,
//! moderate load). Figure 11's observation is that the *replication
//! structure* dominates the *tie-break choice*; this ablation quantifies
//! both axes side by side.

use flowsched_algos::tiebreak::TieBreak;
use flowsched_kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_parallel::par_map;
use flowsched_sim::driver::{simulate, SimConfig};
use flowsched_stats::descriptive::median;
use flowsched_stats::rng::derive_rng;
use flowsched_stats::zipf::BiasCase;
use serde::Serialize;

use crate::scale::Scale;
use crate::table::TableBuilder;

/// One ablation cell.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Strategy label.
    pub strategy: String,
    /// Tie-break label.
    pub policy: String,
    /// Median `Fmax`.
    pub fmax_median: f64,
    /// Median mean flow time.
    pub mean_flow_median: f64,
    /// Median 99th-percentile flow (tail latency).
    pub p99_median: f64,
}

/// Load fraction (of capacity) at which the ablation operates.
pub const ABLATION_LOAD: f64 = 0.5;

/// Runs the ablation grid.
pub fn run(scale: &Scale) -> Vec<AblationRow> {
    let policies = [
        TieBreak::Min,
        TieBreak::Max,
        TieBreak::Rand {
            seed: scale.seed ^ 0xAB,
        },
    ];
    let mut jobs = Vec::new();
    for strategy in ReplicationStrategy::all() {
        for policy in policies {
            jobs.push((strategy, policy));
        }
    }
    par_map(&jobs, |&(strategy, policy)| {
        let lambda = ABLATION_LOAD * scale.m as f64;
        let mut fmaxes = Vec::new();
        let mut means = Vec::new();
        let mut p99s = Vec::new();
        for rep in 0..scale.repetitions {
            let mut rng = derive_rng(scale.seed, 0xAB1A ^ ((rep as u64) << 4));
            let cluster = KvCluster::new(
                ClusterConfig {
                    m: scale.m,
                    k: scale.k,
                    strategy,
                    s: 1.0,
                    case: BiasCase::Shuffled,
                },
                &mut rng,
            );
            let inst = cluster.requests(scale.tasks, lambda, &mut rng);
            let (_, report) = simulate(
                &inst,
                &SimConfig {
                    policy,
                    warmup_fraction: 0.1,
                },
            );
            fmaxes.push(report.fmax);
            means.push(report.mean_flow);
            p99s.push(report.p99);
        }
        AblationRow {
            strategy: strategy.to_string(),
            policy: policy.to_string(),
            fmax_median: median(&fmaxes),
            mean_flow_median: median(&means),
            p99_median: median(&p99s),
        }
    })
}

/// Renders the ablation table.
pub fn render(rows: &[AblationRow]) -> String {
    let mut t = TableBuilder::new(&["strategy", "tie-break", "Fmax", "mean flow", "p99"]);
    for r in rows {
        t.row(vec![
            r.strategy.clone(),
            r.policy.clone(),
            format!("{:.1}", r.fmax_median),
            format!("{:.2}", r.mean_flow_median),
            format!("{:.1}", r.p99_median),
        ]);
    }
    format!(
        "Ablation — tie-break × replication strategy (Shuffled, s = 1, load {:.0}%)\n\n{}",
        ABLATION_LOAD * 100.0,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_complete() {
        let rows = run(&Scale::quick());
        assert_eq!(rows.len(), 6);
        for strategy in ["Overlapping", "Disjoint"] {
            for policy in ["EFT-Min", "EFT-Max", "EFT-Rand"] {
                assert!(
                    rows.iter()
                        .any(|r| r.strategy == strategy && r.policy == policy),
                    "missing {strategy}/{policy}"
                );
            }
        }
    }

    #[test]
    fn metrics_are_sane() {
        for r in run(&Scale::quick()) {
            assert!(r.fmax_median >= 1.0, "{r:?}");
            assert!(r.mean_flow_median >= 1.0, "{r:?}");
            assert!(r.p99_median <= r.fmax_median + 1e-9, "{r:?}");
            assert!(r.mean_flow_median <= r.p99_median + 1e-9, "{r:?}");
        }
    }

    #[test]
    fn structure_dominates_tiebreak() {
        // The paper's qualitative claim: the gain from a replication
        // structure outweighs the gain from the tie-break. Compare the
        // spread across strategies (fixing Min) against the spread across
        // tie-breaks (fixing Overlapping).
        let rows = run(&Scale::quick());
        let get = |st: &str, po: &str| {
            rows.iter()
                .find(|r| r.strategy == st && r.policy == po)
                .unwrap()
                .fmax_median
        };
        let structure_gap = (get("Disjoint", "EFT-Min") - get("Overlapping", "EFT-Min")).abs();
        let tiebreak_gap = (get("Overlapping", "EFT-Max") - get("Overlapping", "EFT-Min")).abs();
        // Not a strict theorem — but at 50% load with bias the structure
        // gap should not be *smaller* by an order of magnitude.
        assert!(
            structure_gap * 10.0 >= tiebreak_gap,
            "structure gap {structure_gap} vs tie-break gap {tiebreak_gap}"
        );
    }
}
