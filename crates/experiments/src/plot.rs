//! Minimal SVG rendering of the paper's figures — no plotting
//! dependencies, just well-formed SVG strings: a heatmap for Figure 10
//! and multi-series line charts with vertical max-load markers for
//! Figure 11.

use crate::fig10::Fig10Output;
use crate::fig11::Fig11Output;
use crate::scale::Scale;

const CELL: f64 = 26.0;
const MARGIN: f64 = 70.0;

fn svg_header(width: f64, height: f64) -> String {
    format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}" font-family="monospace" font-size="11">"#
    )
}

/// Blue→white→red diverging color for a `[0, 1]` value.
fn heat_color(v: f64) -> String {
    let v = v.clamp(0.0, 1.0);
    let (r, g, b) = if v < 0.5 {
        let t = v * 2.0;
        ((70.0 + t * 185.0) as u8, (110.0 + t * 145.0) as u8, 255u8)
    } else {
        let t = (v - 0.5) * 2.0;
        (255u8, (255.0 - t * 145.0) as u8, (255.0 - t * 185.0) as u8)
    };
    format!("rgb({r},{g},{b})")
}

/// Renders the Figure 10a heatmaps (one per strategy) as a single SVG.
pub fn fig10a_svg(out: &Fig10Output, scale: &Scale) -> String {
    let grid = scale.bias_grid();
    let strategies = ["Overlapping", "Disjoint"];
    let block_w = MARGIN + scale.m as f64 * CELL + 30.0;
    let width = block_w * strategies.len() as f64;
    let height = MARGIN + grid.len() as f64 * CELL + 40.0;
    let mut svg = svg_header(width, height);

    for (si, strategy) in strategies.iter().enumerate() {
        let x0 = MARGIN + si as f64 * block_w;
        let y0 = MARGIN;
        svg.push_str(&format!(
            r#"<text x="{x}" y="30" font-size="14">{strategy} — max load %</text>"#,
            x = x0
        ));
        for (yi, &s) in grid.iter().enumerate() {
            svg.push_str(&format!(
                r#"<text x="{x}" y="{y}" text-anchor="end">{s:.2}</text>"#,
                x = x0 - 6.0,
                y = y0 + yi as f64 * CELL + CELL * 0.7
            ));
            for k in 1..=scale.m {
                let cell = out
                    .cells
                    .iter()
                    .find(|c| c.s == s && c.k == k && c.strategy == *strategy)
                    .expect("sweep covers grid");
                let v = cell.max_load_pct / 100.0;
                svg.push_str(&format!(
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{CELL}" height="{CELL}" fill="{fill}"><title>s={s:.2} k={k}: {pct:.0}%</title></rect>"#,
                    x = x0 + (k - 1) as f64 * CELL,
                    y = y0 + yi as f64 * CELL,
                    fill = heat_color(v),
                    pct = cell.max_load_pct,
                ));
            }
        }
        for k in 1..=scale.m {
            svg.push_str(&format!(
                r#"<text x="{x:.1}" y="{y:.1}" text-anchor="middle">{k}</text>"#,
                x = x0 + (k - 1) as f64 * CELL + CELL / 2.0,
                y = y0 + grid.len() as f64 * CELL + 16.0
            ));
        }
    }
    svg.push_str("</svg>");
    svg
}

/// Renders Figure 11 as one line-chart panel per case, with vertical
/// max-load markers.
pub fn fig11_svg(out: &Fig11Output) -> String {
    let cases = ["Uniform", "Shuffled", "Worst-case"];
    let (panel_w, panel_h) = (320.0, 260.0);
    let width = panel_w * cases.len() as f64 + MARGIN;
    let height = panel_h + 2.0 * MARGIN;
    let mut svg = svg_header(width, height);
    let colors = [
        ("Overlapping", "EFT-Min", "#1f77b4"),
        ("Overlapping", "EFT-Max", "#17becf"),
        ("Disjoint", "EFT-Min", "#d62728"),
        ("Disjoint", "EFT-Max", "#ff7f0e"),
    ];

    for (ci, case) in cases.iter().enumerate() {
        let x0 = MARGIN / 2.0 + ci as f64 * panel_w + 30.0;
        let y0 = MARGIN;
        let plot_w = panel_w - 70.0;
        let plot_h = panel_h - 40.0;
        let points: Vec<_> = out.points.iter().filter(|p| p.case == *case).collect();
        let max_load = points.iter().map(|p| p.load_pct).fold(0.0, f64::max);
        // Log-ish clamp: saturated runs dwarf the stable region, so cap
        // the y-axis at the 3rd largest stable value × 2 (min 10).
        let mut ys: Vec<f64> = points.iter().map(|p| p.fmax_median).collect();
        ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cap = (ys[ys.len() * 3 / 4] * 2.0).max(10.0);

        svg.push_str(&format!(
            r#"<text x="{x0}" y="{y}" font-size="14">{case}</text>"#,
            y = y0 - 12.0
        ));
        // Axes.
        svg.push_str(&format!(
            r##"<rect x="{x0}" y="{y0}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#888"/>"##
        ));
        // Max-load vertical markers.
        for line in out.max_loads.iter().filter(|l| l.case == *case) {
            // Clamp markers beyond the swept range to the panel edge so
            // they remain visible (with the true value in the tooltip).
            let frac = (line.max_load_pct / max_load).min(1.0);
            let x = x0 + frac * plot_w;
            svg.push_str(&format!(
                r#"<line x1="{x:.1}" y1="{y0}" x2="{x:.1}" y2="{yb:.1}" stroke="red" stroke-dasharray="4 3"><title>{st}: {pct:.0}%</title></line>"#,
                yb = y0 + plot_h,
                st = line.strategy,
                pct = line.max_load_pct,
            ));
        }
        // Series.
        for &(strategy, policy, color) in &colors {
            let mut series: Vec<(f64, f64)> = points
                .iter()
                .filter(|p| p.strategy == strategy && p.policy == policy)
                .map(|p| (p.load_pct, p.fmax_median.min(cap)))
                .collect();
            series.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            if series.is_empty() {
                continue;
            }
            let path: Vec<String> = series
                .iter()
                .map(|&(lx, ly)| {
                    format!(
                        "{:.1},{:.1}",
                        x0 + lx / max_load * plot_w,
                        y0 + plot_h - ly / cap * plot_h
                    )
                })
                .collect();
            svg.push_str(&format!(
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.6"><title>{strategy}/{policy}</title></polyline>"#,
                path.join(" ")
            ));
        }
        // Y ticks.
        for frac in [0.0, 0.5, 1.0] {
            svg.push_str(&format!(
                r#"<text x="{x}" y="{y:.1}" text-anchor="end">{v:.0}</text>"#,
                x = x0 - 4.0,
                y = y0 + plot_h - frac * plot_h + 4.0,
                v = frac * cap
            ));
        }
        svg.push_str(&format!(
            r#"<text x="{x:.1}" y="{y:.1}" text-anchor="middle">load % (0–{max_load:.0})</text>"#,
            x = x0 + plot_w / 2.0,
            y = y0 + plot_h + 24.0
        ));
    }
    // Legend.
    for (i, &(strategy, policy, color)) in colors.iter().enumerate() {
        let y = height - 18.0;
        let x = MARGIN / 2.0 + 40.0 + i as f64 * 200.0;
        svg.push_str(&format!(
            r#"<line x1="{x}" y1="{y}" x2="{x2}" y2="{y}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ty}">{strategy}/{policy}</text>"#,
            x2 = x + 20.0,
            tx = x + 26.0,
            ty = y + 4.0
        ));
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fig10, fig11};

    fn tiny() -> Scale {
        Scale {
            m: 6,
            k: 3,
            permutations: 3,
            repetitions: 1,
            tasks: 200,
            bias_step: 2.5,
            seed: 1,
        }
    }

    #[test]
    fn fig10a_svg_is_well_formed() {
        let scale = tiny();
        let out = fig10::run(&scale);
        let svg = fig10a_svg(&out, &scale);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One rect per cell per strategy.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 2 * scale.bias_grid().len() * scale.m);
        assert!(svg.contains("Overlapping"));
    }

    #[test]
    fn fig11_svg_has_series_and_markers() {
        let out = fig11::run(&tiny());
        let svg = fig11_svg(&out);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(svg.matches("<polyline").count() >= 12); // 4 series × 3 cases
        assert!(svg.contains("stroke-dasharray")); // max-load markers
        assert!(svg.contains("Worst-case"));
    }

    #[test]
    fn heat_color_endpoints() {
        assert_eq!(heat_color(0.0), "rgb(70,110,255)");
        assert_eq!(heat_color(1.0), "rgb(255,110,70)");
        // Midpoint is white.
        assert_eq!(heat_color(0.5), "rgb(255,255,255)");
    }
}
