//! Terminal table rendering and CSV export for experiment output.

/// Builds aligned ASCII tables.
#[derive(Debug, Clone, Default)]
pub struct TableBuilder {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TableBuilder {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    /// Panics when the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[c] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (comma-separated, quotes around cells
    /// containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible experiment precision.
pub fn fnum(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e9 {
        format!("{}", x as i64)
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableBuilder::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns aligned: "value" column starts at same offset.
        let off = lines[2].find('1').unwrap();
        let off2 = lines[3].find("2.5").unwrap();
        assert_eq!(off, off2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TableBuilder::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    fn fnum_trims_integers() {
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(3.25), "3.250");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = TableBuilder::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
