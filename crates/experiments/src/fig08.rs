//! Figure 8 — example load distributions `λ·P(Eⱼ)` on a cluster of
//! `m = 6` machines at full offered load (`λ = m`), for the three
//! popularity cases.

use flowsched_kvstore::popularity::{load_distribution, machine_popularity};
use flowsched_stats::rng::derive_rng;
use flowsched_stats::zipf::BiasCase;
use serde::Serialize;

use crate::table::{fnum, TableBuilder};

/// One bar of Figure 8: the offered load of one machine in one case.
#[derive(Debug, Clone, Serialize)]
pub struct Fig08Row {
    /// Popularity case label.
    pub case: String,
    /// One-based machine index `j`.
    pub machine: usize,
    /// Offered load `λ·P(Eⱼ)` (1.0 = 100%).
    pub load: f64,
}

/// Runs the Figure 8 computation (m = 6, λ = m, s = 1 for the biased
/// cases, matching the paper's example).
pub fn run(seed: u64) -> Vec<Fig08Row> {
    let m = 6usize;
    let lambda = m as f64;
    let s = 1.0;
    let mut rows = Vec::new();
    for (idx, case) in [BiasCase::Uniform, BiasCase::WorstCase, BiasCase::Shuffled]
        .into_iter()
        .enumerate()
    {
        let mut rng = derive_rng(seed, idx as u64);
        let pop = machine_popularity(m, s, case, &mut rng);
        for (j, load) in load_distribution(lambda, &pop).into_iter().enumerate() {
            rows.push(Fig08Row {
                case: case.to_string(),
                machine: j + 1,
                load,
            });
        }
    }
    rows
}

/// Renders the figure as one table per case with bar sparklines.
pub fn render(rows: &[Fig08Row]) -> String {
    let mut out = String::from("Figure 8 — load distribution λ·P(E_j), m = 6, λ = m, s = 1\n\n");
    for case in ["Uniform", "Worst-case", "Shuffled"] {
        let mut t = TableBuilder::new(&["machine", "load", "bar"]);
        for r in rows.iter().filter(|r| r.case == case) {
            let bar = "#".repeat((r.load * 20.0).round() as usize);
            t.row(vec![format!("M{}", r.machine), fnum(r.load), bar]);
        }
        out.push_str(&format!("[{case} case]\n{}\n", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_rows_total() {
        let rows = run(1);
        assert_eq!(rows.len(), 18);
    }

    #[test]
    fn uniform_rows_are_all_one() {
        for r in run(1).iter().filter(|r| r.case == "Uniform") {
            assert!((r.load - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn each_case_sums_to_lambda() {
        let rows = run(2);
        for case in ["Uniform", "Worst-case", "Shuffled"] {
            let total: f64 = rows.iter().filter(|r| r.case == case).map(|r| r.load).sum();
            assert!((total - 6.0).abs() < 1e-9, "{case}: {total}");
        }
    }

    #[test]
    fn worst_case_is_decreasing() {
        let loads: Vec<f64> = run(3)
            .iter()
            .filter(|r| r.case == "Worst-case")
            .map(|r| r.load)
            .collect();
        for w in loads.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn render_contains_all_cases() {
        let s = render(&run(4));
        for case in ["Uniform", "Worst-case", "Shuffled"] {
            assert!(s.contains(case));
        }
    }
}
