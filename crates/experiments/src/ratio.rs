//! Empirical competitive-ratio ladder for the registry's policy
//! frontier: every policy is named by its registry string, run through
//! [`flowsched_sim::simulate_stream_policy`] over the adversarial
//! stream built to punish its oblivious baseline, and scored against an
//! offline reference.
//!
//! | family | policies | objective | reference |
//! |---|---|---|---|
//! | `interval-adversary` | `eft:min` | `Fmax` | exact matching OPT |
//! | `weighted-burst` | `eft:min`, `weft@θ:min` | `max wᵢ·Fᵢ` | exact weighted matching OPT |
//! | `setup-thrash` | `setup-obl@c:min`, `setup@c:min` | `Fmax` (setups included) | setup-free OPT (lower bound) |
//!
//! The weighted reference is exact (Azar–Touitou's objective, solved by
//! [`optimal_unit_weighted_fmax`]); the setup reference relaxes the
//! setups away (any schedule that pays setups is no faster than one
//! that doesn't), so those ratios are upper bounds on the true
//! competitive ratio. `ci_check.sh` runs the `ratio_ladder` bin, which
//! asserts every measured ratio stays inside the envelope recorded in
//! `EXPERIMENTS.md` — a drift in any dispatcher, oracle, or stream
//! moves a ratio and trips the gate.

use flowsched_algos::offline::{optimal_unit_fmax, optimal_unit_weighted_fmax};
use flowsched_algos::registry::PolicySpec;
use flowsched_core::instance::Instance;
use flowsched_core::stream::{collect_stream, InstanceStream};
use flowsched_obs::NoopRecorder;
use flowsched_sim::{simulate_stream_policy, ReportConfig, SimReport};
use flowsched_workloads::adversary::interval::interval_adversary_instance;
use flowsched_workloads::{SetupThrashStream, WeightedBurstStream};
use serde::Serialize;

use crate::scale::Scale;
use crate::table::TableBuilder;

/// One rung of the ladder: a policy on its adversarial family.
#[derive(Debug, Clone, Serialize)]
pub struct RatioPoint {
    /// Workload family name.
    pub family: String,
    /// Registry string of the policy under test.
    pub policy: String,
    /// Achieved objective value (the family's column above).
    pub measured: f64,
    /// Offline reference value.
    pub opt: f64,
    /// `measured / opt` — the empirical competitive ratio.
    pub ratio: f64,
    /// `true` when the reference is the exact optimum, `false` when it
    /// is a lower bound (ratio is then an upper bound).
    pub opt_exact: bool,
}

fn point(family: &str, policy: &str, measured: f64, opt: f64, opt_exact: bool) -> RatioPoint {
    assert!(opt > 0.0, "{family}: degenerate reference {opt}");
    RatioPoint {
        family: family.to_string(),
        policy: policy.to_string(),
        measured,
        opt,
        ratio: measured / opt,
        opt_exact,
    }
}

/// Runs one registry policy over an instance replay and returns the
/// online report.
fn replay(inst: &Instance, policy: &str) -> SimReport {
    let spec: PolicySpec = policy.parse().expect("ladder policy strings are valid");
    simulate_stream_policy(
        InstanceStream::new(inst),
        &spec,
        &ReportConfig::default(),
        &mut NoopRecorder,
    )
}

/// Runs the ladder. Geometry is fixed small (the matching oracles are
/// exact but polynomial); `scale` only stretches the round counts, and
/// the paper scale caps them so the references stay tractable.
pub fn run(scale: &Scale) -> Vec<RatioPoint> {
    let mut out = Vec::new();

    // Anchor: EFT on the Theorem 8 interval adversary vs the exact
    // matching optimum — the ladder's connection to the source paper.
    let (m, k) = (8usize, 3usize);
    let rounds = (scale.tasks / (10 * m)).clamp(4, 16);
    let inst = interval_adversary_instance(m, k, rounds);
    out.push(point(
        "interval-adversary",
        "eft:min",
        replay(&inst, "eft:min").fmax,
        optimal_unit_fmax(&inst),
        true,
    ));

    // Weighted bursts: weight-oblivious EFT vs the weighted-EFT packing
    // rule, both scored on max wᵢ·Fᵢ against the exact weighted OPT.
    let (wm, lights, heavy) = (4usize, 8usize, 16.0);
    let wrounds = (scale.repetitions).clamp(2, 4);
    let winst = collect_stream(WeightedBurstStream::new(wm, lights, heavy, wrounds))
        .expect("weighted burst stream is a valid instance");
    let wopt = optimal_unit_weighted_fmax(&winst);
    for policy in ["eft:min", &format!("weft@{lights}:min")] {
        out.push(point(
            "weighted-burst",
            policy,
            replay(&winst, policy).weighted_fmax,
            wopt,
            true,
        ));
    }

    // Setup thrash: the oblivious dispatcher pays the switch on nearly
    // every task; the reference relaxes setups away entirely. The
    // geometry is pinned (not scaled) — the aware-vs-oblivious gap is a
    // property of this cost/overlap shape, and the ladder wants a
    // stable number to gate on.
    let (sm, clusters, width, stride, cost) = (5usize, 2usize, 4usize, 1usize, 2.0);
    let steps = 30;
    let sinst = collect_stream(SetupThrashStream::new(sm, clusters, width, stride, steps))
        .expect("setup thrash stream is a valid instance");
    let sopt = optimal_unit_fmax(&sinst);
    for policy in [format!("setup-obl@{cost}:min"), format!("setup@{cost}:min")] {
        out.push(point(
            "setup-thrash",
            &policy,
            replay(&sinst, &policy).fmax,
            sopt,
            false,
        ));
    }

    out
}

/// Renders the ladder as a terminal table.
pub fn render(rows: &[RatioPoint]) -> String {
    let mut t = TableBuilder::new(&["family", "policy", "measured", "reference", "ratio", "ref"]);
    for r in rows {
        t.row(vec![
            r.family.clone(),
            r.policy.clone(),
            format!("{:.3}", r.measured),
            format!("{:.3}", r.opt),
            format!("{:.3}", r.ratio),
            if r.opt_exact {
                "exact".into()
            } else {
                "lower bound".into()
            },
        ]);
    }
    format!(
        "Competitive-ratio ladder — registry policies vs offline references\n\
         (weighted reference per Azar-Touitou arXiv:1712.10273; setup model per\n\
         Maecker et al. arXiv:1709.05896; see EXPERIMENTS.md for the envelopes)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_shape_and_sanity() {
        let rows = run(&Scale::quick());
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.ratio >= 1.0 - 1e-9,
                "{}/{}: ratio {}",
                r.family,
                r.policy,
                r.ratio
            );
            assert!(r.ratio.is_finite());
        }
    }

    #[test]
    fn aware_policies_beat_their_oblivious_baselines() {
        let rows = run(&Scale::quick());
        let get = |family: &str, policy_prefix: &str| -> f64 {
            rows.iter()
                .find(|r| r.family == family && r.policy.starts_with(policy_prefix))
                .unwrap_or_else(|| panic!("missing {family}/{policy_prefix}"))
                .ratio
        };
        assert!(get("weighted-burst", "weft@") < get("weighted-burst", "eft:min"));
        assert!(get("setup-thrash", "setup@") < get("setup-thrash", "setup-obl@"));
    }

    #[test]
    fn weighted_rows_use_the_exact_reference() {
        let rows = run(&Scale::quick());
        for r in rows.iter().filter(|r| r.family == "weighted-burst") {
            assert!(r.opt_exact);
        }
        for r in rows.iter().filter(|r| r.family == "setup-thrash") {
            assert!(!r.opt_exact);
        }
    }

    #[test]
    fn render_names_every_policy() {
        let rows = run(&Scale::quick());
        let s = render(&rows);
        for r in &rows {
            assert!(s.contains(&r.policy), "render missing {}", r.policy);
        }
    }
}
