//! Open-question exploration (paper conclusion): is there a replication
//! strategy with *both* good average-case behaviour and good worst-case
//! guarantees? This experiment scores three strategies — the paper's two
//! plus this workspace's staggered-blocks candidate — on three axes:
//!
//! 1. **Tolerable load**: median LP max-load under Shuffled Zipf(1) bias.
//! 2. **Average behaviour**: median `Fmax` of EFT-Min at 50% load.
//! 3. **Worst-case exposure**: worst `Fmax/OPT` over seeded adversarial
//!    burst streams confined to the strategy's replica sets (OPT exact
//!    via the unit-task matching solver).

use flowsched_algos::eft;
use flowsched_algos::eft::EftState;
use flowsched_algos::offline::optimal_unit_fmax;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_core::instance::InstanceBuilder;
use flowsched_core::procset::ProcSet;
use flowsched_kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_obs::{WindowConfig, WindowedMetrics};
use flowsched_parallel::par_map;
use flowsched_sim::driver::{simulate, simulate_with, SimConfig};
use flowsched_solver::loadflow::max_load_lp_with;
use flowsched_solver::simplex::SimplexScratch;
use flowsched_stats::descriptive::median;
use flowsched_stats::rng::derive_rng;
use flowsched_stats::zipf::{BiasCase, Zipf};
use flowsched_workloads::adversary::staircase::run_staircase;
use rand::Rng;
use serde::Serialize;

use crate::scale::Scale;
use crate::table::TableBuilder;

/// One strategy's scores.
#[derive(Debug, Clone, Serialize)]
pub struct OpenQRow {
    /// Strategy label.
    pub strategy: String,
    /// Number of distinct replica sets the strategy induces.
    pub distinct_sets: usize,
    /// Median LP max-load (% of capacity), Shuffled Zipf(1).
    pub max_load_pct: f64,
    /// Median EFT-Min `Fmax` at 50% offered load (Shuffled Zipf(1)).
    pub fmax_at_half_load: f64,
    /// Worst `Fmax/OPT` found by the adversarial burst search.
    pub worst_ratio: f64,
    /// `Fmax` under the generalized staircase adversary aimed at the
    /// strategy's own replica-set family (principled worst-case probe;
    /// per-round work equals capacity, so divergence means the adversary
    /// found the EFT failure mode).
    pub staircase_fmax: f64,
}

/// Runs the comparison.
pub fn run(scale: &Scale) -> Vec<OpenQRow> {
    let strategies = ReplicationStrategy::extended();
    par_map(&strategies, |&strategy| {
        let (m, k) = (scale.m, scale.k);
        let allowed = strategy.allowed_sets(k, m);

        let mut distinct: Vec<&Vec<usize>> = Vec::new();
        for a in &allowed {
            if !distinct.contains(&a) {
                distinct.push(a);
            }
        }

        // Axis 1: tolerable load (one tableau arena for the whole sweep).
        let mut scratch = SimplexScratch::new();
        let loads: Vec<f64> = (0..scale.permutations)
            .map(|p| {
                let mut rng = derive_rng(scale.seed, 0x09E0 ^ p as u64);
                let w = Zipf::new(m, 1.0).shuffled(&mut rng);
                max_load_lp_with(w.probs(), &allowed, &mut scratch) / m as f64 * 100.0
            })
            .collect();
        let max_load_pct = median(&loads);

        // Axis 2: average behaviour at 50% load.
        let fmaxes: Vec<f64> = (0..scale.repetitions)
            .map(|rep| {
                let mut rng = derive_rng(scale.seed, 0x09E1 ^ (rep as u64) << 3);
                let cluster = KvCluster::new(
                    ClusterConfig {
                        m,
                        k,
                        strategy,
                        s: 1.0,
                        case: BiasCase::Shuffled,
                    },
                    &mut rng,
                );
                let inst = cluster.requests(scale.tasks, 0.5 * m as f64, &mut rng);
                let (_, report) = simulate(
                    &inst,
                    &SimConfig {
                        policy: TieBreak::Min,
                        warmup_fraction: 0.1,
                    },
                );
                report.fmax
            })
            .collect();
        let fmax_at_half_load = median(&fmaxes);

        // Axis 3: adversarial burst search. Each trial floods a random
        // subsequence of owners' replica sets with synchronized unit
        // bursts — the pattern behind the Theorem 8 failure mode.
        let trials = (scale.permutations * 2).max(16);
        let mut worst: f64 = 1.0;
        for trial in 0..trials as u64 {
            let mut rng = derive_rng(scale.seed, 0x09E2 ^ trial);
            let steps = 3 * m;
            let mut b = InstanceBuilder::new(m);
            for t in 0..steps {
                for _ in 0..m {
                    let owner = rng.random_range(0..m);
                    // Bias owners toward a hot prefix to mimic the
                    // adversary's staircase pressure.
                    let owner = owner.min(rng.random_range(0..m));
                    b.push_unit(t as f64, strategy.replica_set(owner, k, m));
                }
            }
            let inst = b.build().expect("valid instance");
            let s = eft(&inst, TieBreak::Min);
            let opt = optimal_unit_fmax(&inst);
            worst = worst.max(s.fmax(&inst) / opt);
        }

        // Axis 4: the generalized Theorem 8 staircase over the
        // strategy's *contiguous* replica sets (the adversary, like the
        // paper's, requests only keys whose replica interval does not
        // wrap) with k − 1 extra stacking tasks. For the overlapping ring
        // this is exactly the Theorem 8 stream; strategies with fewer
        // distinct contiguous sets give the adversary less staircase
        // material.
        let fam: Vec<ProcSet> = {
            let mut out: Vec<ProcSet> = Vec::new();
            for u in 0..m {
                let s = strategy.replica_set(u, k, m);
                if s.as_contiguous_interval().is_some() && !out.contains(&s) {
                    out.push(s);
                }
            }
            out
        };
        let mut eft_algo = EftState::new(m, flowsched_algos::TieBreak::Min);
        let staircase = run_staircase(&mut eft_algo, &fam, k - 1, m * m);

        OpenQRow {
            strategy: strategy.to_string(),
            distinct_sets: distinct.len(),
            max_load_pct,
            fmax_at_half_load,
            worst_ratio: worst,
            staircase_fmax: staircase.fmax(),
        }
    })
}

/// Re-runs axis 2 (EFT-Min at 50% offered load) for one strategy with
/// windowed telemetry, merging the tumbling-window series across the
/// repetitions. Same RNG derivation as [`run`], so the time series
/// describes exactly the runs behind the `fmax_at_half_load` column —
/// this is the "when do queues build" view of the open-question score.
pub fn half_load_timeseries(
    scale: &Scale,
    strategy: ReplicationStrategy,
    window: &WindowConfig,
) -> WindowedMetrics {
    assert_eq!(window.machines, scale.m, "windows sized for the cluster");
    let mut series = WindowedMetrics::new(window.clone());
    for rep in 0..scale.repetitions {
        let mut rng = derive_rng(scale.seed, 0x09E1 ^ (rep as u64) << 3);
        let cluster = KvCluster::new(
            ClusterConfig {
                m: scale.m,
                k: scale.k,
                strategy,
                s: 1.0,
                case: BiasCase::Shuffled,
            },
            &mut rng,
        );
        let inst = cluster.requests(scale.tasks, 0.5 * scale.m as f64, &mut rng);
        let mut shard = WindowedMetrics::new(window.clone());
        let (_, _report) = simulate_with(
            &inst,
            &SimConfig {
                policy: TieBreak::Min,
                warmup_fraction: 0.1,
            },
            &mut shard,
        );
        series.merge(&shard);
    }
    series
}

/// Renders the comparison table.
pub fn render(rows: &[OpenQRow]) -> String {
    let mut t = TableBuilder::new(&[
        "strategy",
        "distinct sets",
        "max load %",
        "Fmax @50%",
        "worst burst ratio",
        "staircase Fmax",
    ]);
    for r in rows {
        t.row(vec![
            r.strategy.clone(),
            r.distinct_sets.to_string(),
            format!("{:.1}", r.max_load_pct),
            format!("{:.1}", r.fmax_at_half_load),
            format!("{:.2}", r.worst_ratio),
            format!("{:.0}", r.staircase_fmax),
        ]);
    }
    format!(
        "Open question (paper conclusion) — replication strategies scored on\n\
         tolerable load, average Fmax, and adversarial exposure (m = 15, k = 3):\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            m: 12,
            k: 4,
            permutations: 6,
            repetitions: 2,
            tasks: 600,
            bias_step: 1.0,
            seed: 5,
        }
    }

    #[test]
    fn all_three_strategies_scored() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 3);
        let names: Vec<&str> = rows.iter().map(|r| r.strategy.as_str()).collect();
        assert!(names.contains(&"Staggered"));
    }

    #[test]
    fn staggered_sits_between_the_extremes_on_load() {
        let rows = run(&tiny());
        let get = |n: &str| rows.iter().find(|r| r.strategy == n).unwrap();
        let over = get("Overlapping").max_load_pct;
        let disj = get("Disjoint").max_load_pct;
        let stag = get("Staggered").max_load_pct;
        assert!(
            stag >= disj - 1e-6,
            "staggered {stag} should not be worse than disjoint {disj}"
        );
        assert!(
            stag <= over + 1e-6,
            "staggered {stag} should not beat overlapping {over}"
        );
    }

    #[test]
    fn distinct_set_counts_are_ordered() {
        let rows = run(&tiny());
        let get = |n: &str| rows.iter().find(|r| r.strategy == n).unwrap().distinct_sets;
        assert!(get("Disjoint") <= get("Staggered"));
        assert!(get("Staggered") <= get("Overlapping"));
    }

    #[test]
    fn staircase_separates_the_extremes() {
        let rows = run(&tiny());
        let get = |n: &str| {
            rows.iter()
                .find(|r| r.strategy == n)
                .unwrap()
                .staircase_fmax
        };
        assert!(get("Overlapping") >= get("Staggered"));
        assert!(get("Staggered") >= get("Disjoint"));
    }

    #[test]
    fn ratios_are_at_least_one() {
        for r in run(&tiny()) {
            assert!(r.worst_ratio >= 1.0 - 1e-9, "{r:?}");
        }
    }

    #[test]
    fn half_load_timeseries_conserves_task_counts() {
        let scale = tiny();
        let window = WindowConfig::defaults(scale.m, 4.0);
        let series = half_load_timeseries(&scale, ReplicationStrategy::Overlapping, &window);
        let starts: u64 = series.windows().iter().map(|w| w.starts).sum();
        let completions: u64 = series.windows().iter().map(|w| w.completions).sum();
        let expected = (scale.repetitions * scale.tasks) as u64;
        assert_eq!(starts, expected, "every task starts exactly once");
        assert_eq!(completions, expected);
        // At 50% load the cluster is stable: mean utilization should sit
        // well below saturation in every window that saw work.
        assert!(series
            .windows()
            .iter()
            .any(|w| w.mean_utilization(4.0) > 0.0));
    }

    #[test]
    fn render_contains_every_strategy() {
        let s = render(&run(&tiny()));
        for n in ["Overlapping", "Disjoint", "Staggered"] {
            assert!(s.contains(n));
        }
    }
}
