//! Figure 10 — theoretical maximum load from LP (15).
//!
//! Sweeps popularity bias `s ∈ [0, 5]` and interval size `k ∈ 1..=m` for
//! both replication strategies in the Shuffled case, solving the max-load
//! LP per configuration and taking the median over permutations
//! (paper: `m = 15`, 100 permutations, `s` step 0.25).
//!
//! Figure 10a reports the median max-load (% of cluster capacity);
//! Figure 10b the ratio overlapping/disjoint.

use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_parallel::par_map;
use flowsched_solver::loadflow::max_load_lp_with;
use flowsched_solver::simplex::SimplexScratch;
use flowsched_stats::descriptive::median;
use flowsched_stats::rng::derive_rng;
use flowsched_stats::zipf::Zipf;
use serde::Serialize;

use crate::scale::Scale;
use crate::table::TableBuilder;

/// One cell of the Figure 10a heatmap.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Cell {
    /// Popularity bias `s`.
    pub s: f64,
    /// Interval size `k`.
    pub k: usize,
    /// Strategy label.
    pub strategy: String,
    /// Median maximum load, in % of cluster capacity (λ*/m × 100).
    pub max_load_pct: f64,
}

/// One cell of the Figure 10b ratio map.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Ratio {
    /// Popularity bias `s`.
    pub s: f64,
    /// Interval size `k`.
    pub k: usize,
    /// Overlapping-over-disjoint median max-load ratio.
    pub ratio: f64,
}

/// Output of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Output {
    /// Figure 10a cells (both strategies).
    pub cells: Vec<Fig10Cell>,
    /// Figure 10b ratios.
    pub ratios: Vec<Fig10Ratio>,
}

/// Runs the Figure 10 sweep. Permutations are shared across `k` and the
/// two strategies (common random numbers), as in the paper where the
/// ratio compares medians over the same permutation population.
#[allow(clippy::needless_range_loop)]
pub fn run(scale: &Scale) -> Fig10Output {
    let m = scale.m;
    let grid = scale.bias_grid();

    // Parallel unit: one (s, permutation) pair → max load for every
    // (k, strategy).
    let jobs: Vec<(usize, usize)> = (0..grid.len())
        .flat_map(|si| (0..scale.permutations).map(move |p| (si, p)))
        .collect();
    let per_job: Vec<Vec<f64>> = par_map(&jobs, |&(si, p)| {
        let s = grid[si];
        let mut rng = derive_rng(scale.seed, (si as u64) << 32 | p as u64);
        let weights = Zipf::new(m, s).shuffled(&mut rng);
        let mut out = Vec::with_capacity(2 * m);
        // One tableau arena for all 2·m LP solves of this job.
        let mut scratch = SimplexScratch::new();
        for strategy in ReplicationStrategy::all() {
            for k in 1..=m {
                let allowed = strategy.allowed_sets(k, m);
                let lambda = max_load_lp_with(weights.probs(), &allowed, &mut scratch);
                out.push(lambda / m as f64 * 100.0);
            }
        }
        out
    });

    // Aggregate medians per (s, strategy, k). Indexed loops keep the
    // (strategy, k) offsets into the per-job vectors legible.
    let mut cells = Vec::new();
    let mut ratios = Vec::new();
    for (si, &s) in grid.iter().enumerate() {
        let mut medians = [vec![0.0; m + 1], vec![0.0; m + 1]];
        for (sti, strategy) in ReplicationStrategy::all().into_iter().enumerate() {
            for k in 1..=m {
                let samples: Vec<f64> = (0..scale.permutations)
                    .map(|p| per_job[si * scale.permutations + p][sti * m + (k - 1)])
                    .collect();
                let med = median(&samples);
                medians[sti][k] = med;
                cells.push(Fig10Cell {
                    s,
                    k,
                    strategy: strategy.to_string(),
                    max_load_pct: med,
                });
            }
        }
        for k in 1..=m {
            ratios.push(Fig10Ratio {
                s,
                k,
                ratio: medians[0][k] / medians[1][k],
            });
        }
    }
    Fig10Output { cells, ratios }
}

/// Renders Figure 10a as one grid per strategy (rows = s, cols = k).
pub fn render_10a(out: &Fig10Output, scale: &Scale) -> String {
    let mut text = String::from(
        "Figure 10a — median max-load (% of capacity) from LP (15), Shuffled case\n\n",
    );
    for strategy in ReplicationStrategy::all() {
        let mut header: Vec<String> = vec!["s \\ k".into()];
        header.extend((1..=scale.m).map(|k| k.to_string()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TableBuilder::new(&header_refs);
        for &s in &scale.bias_grid() {
            let mut row = vec![format!("{s:.2}")];
            for k in 1..=scale.m {
                let cell = out
                    .cells
                    .iter()
                    .find(|c| c.s == s && c.k == k && c.strategy == strategy.to_string())
                    .expect("sweep covers the whole grid");
                row.push(format!("{:.0}", cell.max_load_pct));
            }
            t.row(row);
        }
        text.push_str(&format!("[{strategy}]\n{}\n", t.render()));
    }
    text
}

/// Renders Figure 10b (ratio overlapping/disjoint).
pub fn render_10b(out: &Fig10Output, scale: &Scale) -> String {
    let mut header: Vec<String> = vec!["s \\ k".into()];
    header.extend((1..=scale.m).map(|k| k.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TableBuilder::new(&header_refs);
    for &s in &scale.bias_grid() {
        let mut row = vec![format!("{s:.2}")];
        for k in 1..=scale.m {
            let cell = out
                .ratios
                .iter()
                .find(|c| c.s == s && c.k == k)
                .expect("sweep covers the whole grid");
            row.push(format!("{:.2}", cell.ratio));
        }
        t.row(row);
    }
    format!(
        "Figure 10b — overlapping/disjoint median max-load ratio, Shuffled case\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            m: 6,
            k: 3,
            permutations: 5,
            repetitions: 1,
            tasks: 100,
            bias_step: 1.25,
            seed: 7,
        }
    }

    #[test]
    fn sweep_covers_grid() {
        let scale = tiny_scale();
        let out = run(&scale);
        let grid = scale.bias_grid();
        assert_eq!(out.cells.len(), grid.len() * scale.m * 2);
        assert_eq!(out.ratios.len(), grid.len() * scale.m);
    }

    #[test]
    fn no_bias_means_full_load_everywhere() {
        // Paper: "replication strategies exhibit no difference … when no
        // bias is introduced (s = 0)" — and uniform weights allow 100%.
        let out = run(&tiny_scale());
        for c in out.cells.iter().filter(|c| c.s == 0.0) {
            assert!((c.max_load_pct - 100.0).abs() < 1e-6, "{c:?}");
        }
    }

    #[test]
    fn full_replication_erases_bias() {
        // Paper: "the popularity bias has obviously no effect when data
        // are fully replicated (k = m)".
        let scale = tiny_scale();
        let out = run(&scale);
        for c in out.cells.iter().filter(|c| c.k == scale.m) {
            assert!((c.max_load_pct - 100.0).abs() < 1e-6, "{c:?}");
        }
    }

    #[test]
    fn overlapping_never_loses() {
        let out = run(&tiny_scale());
        for r in &out.ratios {
            assert!(r.ratio >= 1.0 - 1e-9, "ratio below 1 at {r:?}");
        }
    }

    #[test]
    fn bias_hurts_disjoint_more() {
        // At moderate bias and mid k, the overlapping gain is strict.
        let scale = Scale {
            bias_step: 1.25,
            permutations: 10,
            ..tiny_scale()
        };
        let out = run(&scale);
        let gain = out
            .ratios
            .iter()
            .filter(|r| r.s == 1.25 && r.k > 1 && r.k < scale.m)
            .map(|r| r.ratio)
            .fold(0.0, f64::max);
        assert!(
            gain > 1.05,
            "expected a strict overlapping gain, got {gain}"
        );
    }

    #[test]
    fn renders_do_not_panic() {
        let scale = tiny_scale();
        let out = run(&scale);
        let a = render_10a(&out, &scale);
        let b = render_10b(&out, &scale);
        assert!(a.contains("Overlapping") && a.contains("Disjoint"));
        assert!(b.contains("ratio"));
    }

    #[test]
    fn deterministic_given_seed() {
        let scale = tiny_scale();
        let a = run(&scale);
        let b = run(&scale);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.max_load_pct, y.max_load_pct);
        }
    }
}
