//! Figure 11 — maximum flow time vs. average cluster load.
//!
//! Simulates EFT-Min and EFT-Max on `m = 15` machines with replication
//! factor `k = 3`, for both strategies and the three popularity cases
//! (Uniform s=0; Shuffled and Worst-case at s=1); 10 000 unit tasks per
//! run with Poisson(λ) arrivals, median `Fmax` over repetitions. The
//! theoretical max-load of each (case, strategy) — the red vertical lines
//! of the paper's figure — is computed with the LP.

use flowsched_algos::tiebreak::TieBreak;
use flowsched_kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_obs::{
    merge_windows, MemoryRecorder, NoopRecorder, ObsConfig, Recorder, ShardedRecorder, Tee,
    WindowConfig, WindowedMetrics,
};
use flowsched_parallel::par_map;
use flowsched_sim::driver::{simulate_with, SimConfig};
use flowsched_solver::loadflow::max_load_lp_with;
use flowsched_solver::simplex::SimplexScratch;
use flowsched_stats::descriptive::median;
use flowsched_stats::rng::derive_rng;
use flowsched_stats::zipf::{BiasCase, Zipf};
use serde::Serialize;

use crate::scale::Scale;
use crate::table::TableBuilder;

/// One point of a Figure 11 curve.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Point {
    /// Case label (Uniform / Shuffled / Worst-case).
    pub case: String,
    /// Strategy label.
    pub strategy: String,
    /// Scheduler label (EFT-Min / EFT-Max).
    pub policy: String,
    /// Average cluster load in % (λ/m × 100).
    pub load_pct: f64,
    /// Median maximum flow time over the repetitions.
    pub fmax_median: f64,
}

/// One of the red vertical lines: the LP max-load for a (case, strategy).
#[derive(Debug, Clone, Serialize)]
pub struct Fig11MaxLoad {
    /// Case label.
    pub case: String,
    /// Strategy label.
    pub strategy: String,
    /// Theoretical maximum load in %.
    pub max_load_pct: f64,
}

/// Output of the Figure 11 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Output {
    /// Curve points.
    pub points: Vec<Fig11Point>,
    /// LP max-load lines.
    pub max_loads: Vec<Fig11MaxLoad>,
}

/// The load grid (in % of capacity) swept for a case, as in the paper's
/// facets: up to 100% for Uniform, up to 60% under bias.
pub fn load_grid(case: BiasCase) -> Vec<f64> {
    match case {
        BiasCase::Uniform => (2..=10).map(|x| x as f64 * 10.0).collect(),
        _ => (1..=12).map(|x| x as f64 * 5.0).collect(),
    }
}

fn zipf_shape(case: BiasCase) -> f64 {
    match case {
        BiasCase::Uniform => 0.0,
        _ => 1.0,
    }
}

/// One (case, strategy, policy, load) curve point to simulate.
#[derive(Clone, Copy)]
struct Job {
    case: BiasCase,
    strategy: ReplicationStrategy,
    policy: TieBreak,
    load_pct: f64,
    id: u64,
}

/// Enumerates every curve point, id'd in a fixed order so per-job RNG
/// derivation (and therefore every sample) is independent of how the
/// jobs are later distributed over workers.
fn curve_jobs() -> Vec<Job> {
    let cases = [BiasCase::Uniform, BiasCase::Shuffled, BiasCase::WorstCase];
    let policies = [TieBreak::Min, TieBreak::Max];
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for case in cases {
        for strategy in ReplicationStrategy::all() {
            for policy in policies {
                for load_pct in load_grid(case) {
                    jobs.push(Job {
                        case,
                        strategy,
                        policy,
                        load_pct,
                        id,
                    });
                    id += 1;
                }
            }
        }
    }
    jobs
}

/// Simulates one curve point (all repetitions), tracing every run into
/// `rec`.
fn run_job<R: Recorder>(job: &Job, scale: &Scale, rec: &mut R) -> Fig11Point {
    let lambda = job.load_pct / 100.0 * scale.m as f64;
    let samples: Vec<f64> = (0..scale.repetitions)
        .map(|rep| {
            let mut rng = derive_rng(scale.seed, job.id << 8 | rep as u64);
            let cluster = KvCluster::new(
                ClusterConfig {
                    m: scale.m,
                    k: scale.k,
                    strategy: job.strategy,
                    s: zipf_shape(job.case),
                    case: job.case,
                },
                &mut rng,
            );
            let inst = cluster.requests(scale.tasks, lambda, &mut rng);
            let (_, report) = simulate_with(
                &inst,
                &SimConfig {
                    policy: job.policy,
                    warmup_fraction: 0.0,
                },
                rec,
            );
            report.fmax
        })
        .collect();
    Fig11Point {
        case: job.case.to_string(),
        strategy: job.strategy.to_string(),
        policy: job.policy.to_string(),
        load_pct: job.load_pct,
        fmax_median: median(&samples),
    }
}

/// Red lines: LP max load per (case, strategy); Shuffled takes the
/// median over the permutation population. One tableau arena serves
/// every LP solve in this sequential sweep.
fn lp_max_loads(scale: &Scale) -> Vec<Fig11MaxLoad> {
    let cases = [BiasCase::Uniform, BiasCase::Shuffled, BiasCase::WorstCase];
    let mut scratch = SimplexScratch::new();
    let mut max_loads = Vec::new();
    for case in cases {
        for strategy in ReplicationStrategy::all() {
            let allowed = strategy.allowed_sets(scale.k, scale.m);
            let pct = match case {
                BiasCase::Uniform => {
                    let w = Zipf::new(scale.m, 0.0);
                    max_load_lp_with(w.probs(), &allowed, &mut scratch) / scale.m as f64 * 100.0
                }
                BiasCase::WorstCase => {
                    let w = Zipf::new(scale.m, 1.0);
                    max_load_lp_with(w.probs(), &allowed, &mut scratch) / scale.m as f64 * 100.0
                }
                BiasCase::Shuffled => {
                    let samples: Vec<f64> = (0..scale.permutations)
                        .map(|p| {
                            let mut rng = derive_rng(scale.seed, 0xF11 << 32 | p as u64);
                            let w = Zipf::new(scale.m, 1.0).shuffled(&mut rng);
                            max_load_lp_with(w.probs(), &allowed, &mut scratch) / scale.m as f64
                                * 100.0
                        })
                        .collect();
                    median(&samples)
                }
            };
            max_loads.push(Fig11MaxLoad {
                case: case.to_string(),
                strategy: strategy.to_string(),
                max_load_pct: pct,
            });
        }
    }
    max_loads
}

/// Runs the Figure 11 experiment.
pub fn run(scale: &Scale) -> Fig11Output {
    let jobs = curve_jobs();
    let points: Vec<Fig11Point> = par_map(&jobs, |job| run_job(job, scale, &mut NoopRecorder));
    Fig11Output {
        points,
        max_loads: lp_max_loads(scale),
    }
}

/// Output of an instrumented Figure 11 sweep: the ordinary result plus
/// the merged telemetry of every simulated run.
#[derive(Debug, Clone)]
pub struct Fig11Telemetry {
    /// Curve points and LP max-load lines, identical to [`run`]'s.
    pub output: Fig11Output,
    /// Aggregate recorder merged across all jobs in job order.
    pub recorder: MemoryRecorder,
    /// Tumbling-window time series merged across all jobs.
    pub windows: WindowedMetrics,
}

/// [`run`] with full telemetry: each `par_map` job records into its own
/// shard ([`ShardedRecorder`]), and the shards are merged in job order
/// — so the merged snapshot is byte-identical to a sequential sweep's
/// ([`run_instrumented_sequential`]) regardless of worker interleaving,
/// the acceptance property `fig11` tests pin.
///
/// # Panics
/// Panics when `obs.machines` or `window.machines` disagree with
/// `scale.m`.
pub fn run_instrumented(scale: &Scale, obs: &ObsConfig, window: &WindowConfig) -> Fig11Telemetry {
    run_instrumented_impl(scale, obs, window, true)
}

/// The sequential reference for [`run_instrumented`]: same jobs, same
/// shards, no thread pool. Exists so tests (and suspicious users) can
/// pin parallel == sequential on a fixed seed.
pub fn run_instrumented_sequential(
    scale: &Scale,
    obs: &ObsConfig,
    window: &WindowConfig,
) -> Fig11Telemetry {
    run_instrumented_impl(scale, obs, window, false)
}

fn run_instrumented_impl(
    scale: &Scale,
    obs: &ObsConfig,
    window: &WindowConfig,
    parallel: bool,
) -> Fig11Telemetry {
    assert_eq!(obs.machines, scale.m, "recorder sized for the cluster");
    assert_eq!(window.machines, scale.m, "windows sized for the cluster");
    let jobs = curve_jobs();
    let sim_job = |job: &Job| {
        let mut rec = Tee(
            ShardedRecorder::shard(obs),
            WindowedMetrics::new(window.clone()),
        );
        let point = run_job(job, scale, &mut rec);
        (point, rec.0, rec.1)
    };
    let results: Vec<(Fig11Point, MemoryRecorder, WindowedMetrics)> = if parallel {
        par_map(&jobs, sim_job)
    } else {
        jobs.iter().map(sim_job).collect()
    };
    let mut points = Vec::with_capacity(results.len());
    let mut shards = Vec::with_capacity(results.len());
    let mut window_shards = Vec::with_capacity(results.len());
    for (point, shard, wins) in results {
        points.push(point);
        shards.push(shard);
        window_shards.push(wins);
    }
    Fig11Telemetry {
        output: Fig11Output {
            points,
            max_loads: lp_max_loads(scale),
        },
        recorder: ShardedRecorder::from_shards(shards).merged(obs),
        windows: merge_windows(window, window_shards.iter()),
    }
}

/// Renders the experiment as one table per case.
pub fn render(out: &Fig11Output) -> String {
    let mut text =
        String::from("Figure 11 — median Fmax vs average load (m = 15, k = 3, unit tasks)\n\n");
    for case in ["Uniform", "Shuffled", "Worst-case"] {
        let mut t = TableBuilder::new(&[
            "load %",
            "Overlap/Min",
            "Overlap/Max",
            "Disjoint/Min",
            "Disjoint/Max",
        ]);
        let loads: Vec<f64> = {
            let mut v: Vec<f64> = out
                .points
                .iter()
                .filter(|p| p.case == case)
                .map(|p| p.load_pct)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v.dedup();
            v
        };
        for load in loads {
            let get = |strategy: &str, policy: &str| -> String {
                out.points
                    .iter()
                    .find(|p| {
                        p.case == case
                            && p.strategy == strategy
                            && p.policy == policy
                            && p.load_pct == load
                    })
                    .map(|p| format!("{:.1}", p.fmax_median))
                    .unwrap_or_else(|| "-".into())
            };
            t.row(vec![
                format!("{load:.0}"),
                get("Overlapping", "EFT-Min"),
                get("Overlapping", "EFT-Max"),
                get("Disjoint", "EFT-Min"),
                get("Disjoint", "EFT-Max"),
            ]);
        }
        let lines: Vec<String> = out
            .max_loads
            .iter()
            .filter(|l| l.case == case)
            .map(|l| format!("{}: {:.0}%", l.strategy, l.max_load_pct))
            .collect();
        text.push_str(&format!(
            "[{case} case]  LP max-load: {}\n{}\n",
            lines.join(", "),
            t.render()
        ));
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            m: 6,
            k: 3,
            permutations: 4,
            repetitions: 2,
            tasks: 400,
            bias_step: 1.0,
            seed: 3,
        }
    }

    #[test]
    fn covers_all_curves() {
        let out = run(&tiny());
        // 3 cases × 2 strategies × 2 policies, grid sizes 9 (uniform) / 12.
        let expected = 2 * 2 * (9 + 12 + 12);
        assert_eq!(out.points.len(), expected);
        assert_eq!(out.max_loads.len(), 6);
    }

    #[test]
    fn uniform_max_load_is_full_capacity() {
        let out = run(&tiny());
        for l in out.max_loads.iter().filter(|l| l.case == "Uniform") {
            assert!((l.max_load_pct - 100.0).abs() < 1e-6, "{l:?}");
        }
    }

    #[test]
    fn biased_max_load_is_below_uniform_and_overlapping_wins() {
        let out = run(&tiny());
        let get = |case: &str, strategy: &str| {
            out.max_loads
                .iter()
                .find(|l| l.case == case && l.strategy == strategy)
                .unwrap()
                .max_load_pct
        };
        for case in ["Shuffled", "Worst-case"] {
            assert!(get(case, "Overlapping") <= 100.0 + 1e-9);
            assert!(
                get(case, "Overlapping") >= get(case, "Disjoint") - 1e-9,
                "{case}: overlapping should dominate"
            );
        }
        // At m = 6, k = 3 the disjoint worst case caps at 3/w({M1..M3}):
        // strictly below full capacity (the paper's m = 15 figure shows
        // 36%; the exact value depends on m).
        assert!(get("Worst-case", "Disjoint") < get("Worst-case", "Overlapping") - 1e-6);
    }

    #[test]
    fn fmax_grows_with_load() {
        let out = run(&tiny());
        // Compare the lowest and highest stable load of one curve.
        let curve: Vec<&Fig11Point> = out
            .points
            .iter()
            .filter(|p| p.case == "Uniform" && p.strategy == "Overlapping" && p.policy == "EFT-Min")
            .collect();
        let lo = curve.iter().find(|p| p.load_pct == 20.0).unwrap();
        let hi = curve.iter().find(|p| p.load_pct == 90.0).unwrap();
        assert!(hi.fmax_median >= lo.fmax_median);
    }

    #[test]
    fn overlapping_beats_disjoint_under_high_uniform_load() {
        // The paper's headline simulation observation (90% load, Uniform:
        // Fmax ≈ 5 overlapping vs ≈ 10 disjoint).
        let scale = Scale {
            repetitions: 3,
            tasks: 2000,
            ..tiny()
        };
        let out = run(&scale);
        let get = |strategy: &str| {
            out.points
                .iter()
                .find(|p| {
                    p.case == "Uniform"
                        && p.strategy == strategy
                        && p.policy == "EFT-Min"
                        && p.load_pct == 90.0
                })
                .unwrap()
                .fmax_median
        };
        assert!(
            get("Overlapping") <= get("Disjoint"),
            "overlapping {o} vs disjoint {d}",
            o = get("Overlapping"),
            d = get("Disjoint")
        );
    }

    #[test]
    fn instrumented_parallel_merge_matches_sequential() {
        // The acceptance property: a parallel instrumented sweep merged
        // in job order is identical (counters, histograms, busy time,
        // time series) to the sequential sweep on the same seed.
        let scale = tiny();
        let obs = ObsConfig::defaults(scale.m);
        let window = WindowConfig::defaults(scale.m, 8.0);
        let par = run_instrumented(&scale, &obs, &window);
        let seq = run_instrumented_sequential(&scale, &obs, &window);

        for (c, v) in seq.recorder.counters().iter() {
            assert_eq!(par.recorder.counters().get(c), v, "counter {}", c.name());
        }
        assert_eq!(
            par.recorder.flow_histogram().counts(),
            seq.recorder.flow_histogram().counts()
        );
        assert_eq!(
            par.recorder.flow_histogram().sum(),
            seq.recorder.flow_histogram().sum()
        );
        assert_eq!(par.recorder.busy_time(), seq.recorder.busy_time());
        assert_eq!(par.recorder.makespan_seen(), seq.recorder.makespan_seen());
        assert_eq!(par.recorder.trace().to_vec(), seq.recorder.trace().to_vec());
        assert_eq!(par.windows.windows().len(), seq.windows.windows().len());
        for (a, b) in par.windows.windows().iter().zip(seq.windows.windows()) {
            assert_eq!(a.starts, b.starts);
            assert_eq!(a.completions, b.completions);
            assert_eq!(a.busy, b.busy);
        }

        // The curve points are the uninstrumented run's, bit for bit
        // (recording transparency through the sharded path).
        let plain = run(&scale);
        for (a, b) in par.output.points.iter().zip(&plain.points) {
            assert_eq!(a.fmax_median, b.fmax_median, "{} {}", a.case, a.load_pct);
        }
        // Every dispatched task landed in the merged histogram: jobs ×
        // repetitions × tasks.
        let expected =
            par.output.points.len() as u64 * scale.repetitions as u64 * scale.tasks as u64;
        assert_eq!(par.recorder.flow_histogram().total(), expected);
    }

    #[test]
    fn render_mentions_every_case() {
        let out = run(&tiny());
        let s = render(&out);
        for case in ["Uniform", "Shuffled", "Worst-case"] {
            assert!(s.contains(case));
        }
    }
}
