//! One-page reproduction self-check: re-derives the paper's headline
//! claims at reduced scale and prints a ✓/✗ verdict per claim. This is
//! the "is the reproduction still intact?" command — a condensed version
//! of the full test suite, runnable in seconds from the CLI.

use flowsched_algos::eft::EftState;
use flowsched_algos::offline::optimal_unit_fmax;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_algos::{eft, fifo};
use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_solver::loadflow::max_load_lp;
use flowsched_stats::rng::derive_rng;
use flowsched_stats::zipf::Zipf;
use flowsched_workloads::adversary::interval::run_interval_adversary;
use flowsched_workloads::adversary::padded::padded_interval_adversary;
use flowsched_workloads::random::{random_instance, RandomInstanceConfig, StructureKind};
use serde::Serialize;

use crate::scale::Scale;
use crate::table::TableBuilder;

/// One verified claim.
#[derive(Debug, Clone, Serialize)]
pub struct CheckRow {
    /// Claim label (paper reference).
    pub claim: String,
    /// Expected value/condition.
    pub expected: String,
    /// Measured value.
    pub measured: String,
    /// Verdict.
    pub pass: bool,
}

fn check(claim: &str, expected: String, measured: String, pass: bool) -> CheckRow {
    CheckRow {
        claim: claim.to_string(),
        expected,
        measured,
        pass,
    }
}

/// Runs every check.
pub fn run(scale: &Scale) -> Vec<CheckRow> {
    let mut rows = Vec::new();
    let (m, k) = (scale.m, scale.k);

    // Proposition 1: FIFO ≡ EFT on unrestricted instances.
    {
        let mut all_equal = true;
        for seed in 0..10u64 {
            let inst = random_instance(
                &RandomInstanceConfig {
                    m: 4,
                    n: 50,
                    structure: StructureKind::Unrestricted,
                    release_span: 8,
                    unit: false,
                    ptime_steps: 6,
                },
                scale.seed ^ seed,
            );
            all_equal &= fifo(&inst, TieBreak::Min) == eft(&inst, TieBreak::Min);
        }
        rows.push(check(
            "Prop. 1: FIFO ≡ EFT",
            "identical schedules".into(),
            if all_equal {
                "identical on 10/10 instances"
            } else {
                "MISMATCH"
            }
            .into(),
            all_equal,
        ));
    }

    // Theorem 2: FIFO optimal on unit tasks.
    {
        let mut optimal = true;
        for seed in 0..6u64 {
            let inst = random_instance(
                &RandomInstanceConfig {
                    m: 3,
                    n: 24,
                    structure: StructureKind::Unrestricted,
                    release_span: 4,
                    unit: true,
                    ptime_steps: 1,
                },
                scale.seed ^ (0xBEE + seed),
            );
            optimal &=
                (fifo(&inst, TieBreak::Min).fmax(&inst) - optimal_unit_fmax(&inst)).abs() < 1e-9;
        }
        rows.push(check(
            "Th. 2: FIFO optimal, unit tasks",
            "Fmax == OPT".into(),
            if optimal {
                "exact on 6/6 instances"
            } else {
                "SUBOPTIMAL"
            }
            .into(),
            optimal,
        ));
    }

    // Theorem 8: EFT-Min reaches m − k + 1 on the interval stream.
    {
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = run_interval_adversary(&mut algo, k, m * m);
        let target = (m - k + 1) as f64;
        rows.push(check(
            "Th. 8: EFT-Min on interval stream",
            format!("Fmax ≥ m−k+1 = {target}"),
            format!("Fmax = {}", out.fmax()),
            out.fmax() >= target,
        ));
    }

    // Theorem 10: padding traps EFT-Max too.
    {
        let mut algo = EftState::new(m, TieBreak::Max);
        let out = padded_interval_adversary(&mut algo, k, m * m);
        let target = (m - k + 1) as f64;
        rows.push(check(
            "Th. 10: padded stream vs EFT-Max",
            format!("Fmax ≥ {target}"),
            format!("Fmax = {:.3}", out.fmax()),
            out.fmax() >= target,
        ));
    }

    // Figure 11 red lines (Worst-case): 59% / 36% at m=15, k=3.
    if (m, k) == (15, 3) {
        let w = Zipf::new(m, 1.0);
        let over = max_load_lp(
            w.probs(),
            &ReplicationStrategy::Overlapping.allowed_sets(k, m),
        ) / m as f64
            * 100.0;
        let disj = max_load_lp(w.probs(), &ReplicationStrategy::Disjoint.allowed_sets(k, m))
            / m as f64
            * 100.0;
        rows.push(check(
            "Fig. 11 max-load lines (Worst-case)",
            "≈ 59% / 36%".into(),
            format!("{over:.0}% / {disj:.0}%"),
            (over - 59.0).abs() < 1.0 && (disj - 36.0).abs() < 1.0,
        ));
    }

    // Figure 10b gain ≈ 1.5 at (s=1.25, k=6).
    if m == 15 {
        use flowsched_stats::descriptive::median;
        let mut over = Vec::new();
        let mut disj = Vec::new();
        for p in 0..30u64 {
            let mut rng = derive_rng(scale.seed, 0x5C ^ p);
            let w = Zipf::new(m, 1.25).shuffled(&mut rng);
            over.push(max_load_lp(
                w.probs(),
                &ReplicationStrategy::Overlapping.allowed_sets(6, m),
            ));
            disj.push(max_load_lp(
                w.probs(),
                &ReplicationStrategy::Disjoint.allowed_sets(6, m),
            ));
        }
        let gain = median(&over) / median(&disj);
        rows.push(check(
            "Fig. 10b gain at (s=1.25, k=6)",
            "≈ 1.5 (paper: up to 50%)".into(),
            format!("{gain:.2}"),
            (1.3..=1.7).contains(&gain),
        ));
    }

    // LP vs max-flow agreement spot check.
    {
        use flowsched_solver::loadflow::max_load_binary_search;
        let mut rng = derive_rng(scale.seed, 0xA9);
        let w = Zipf::new(m, 1.0).shuffled(&mut rng);
        let allowed = ReplicationStrategy::Overlapping.allowed_sets(k, m);
        let lp = max_load_lp(w.probs(), &allowed);
        let bs = max_load_binary_search(w.probs(), &allowed, 1e-8);
        rows.push(check(
            "Simplex vs max-flow load solver",
            "agree to 1e-5".into(),
            format!("|{lp:.6} − {bs:.6}| = {:.1e}", (lp - bs).abs()),
            (lp - bs).abs() < 1e-5,
        ));
    }

    rows
}

/// Renders the verdict table.
pub fn render(rows: &[CheckRow]) -> String {
    let mut t = TableBuilder::new(&["claim", "expected", "measured", "verdict"]);
    for r in rows {
        t.row(vec![
            r.claim.clone(),
            r.expected.clone(),
            r.measured.clone(),
            if r.pass {
                "✓".into()
            } else {
                "✗ FAIL".into()
            },
        ]);
    }
    let all = rows.iter().all(|r| r.pass);
    format!(
        "Reproduction self-check — headline claims re-derived\n\n{}\n{}\n",
        t.render(),
        if all {
            "all checks passed"
        } else {
            "SOME CHECKS FAILED"
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_check_passes_at_paper_parameters() {
        let rows = run(&Scale::quick()); // quick() keeps m=15, k=3
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.pass, "failed check: {r:?}");
        }
        // All seven checks present at (15, 3).
        assert_eq!(rows.len(), 7);
    }

    #[test]
    fn conditional_checks_skip_other_sizes() {
        let scale = Scale {
            m: 8,
            k: 3,
            ..Scale::quick()
        };
        let rows = run(&scale);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.pass, "failed check: {r:?}");
        }
    }

    #[test]
    fn render_reports_success() {
        let s = render(&run(&Scale::quick()));
        assert!(s.contains("all checks passed"));
        assert!(!s.contains("FAIL"));
    }
}
