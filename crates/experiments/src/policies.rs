//! Other immediate-dispatch algorithms (paper conclusion: "the current
//! bound on the competitive ratio of EFT with interval processing sets
//! could be extended to other immediate dispatch algorithms").
//!
//! This experiment aims the Theorem 8 interval stream at each
//! [`DispatchRule`] and also scores the rules on the stochastic key-value
//! workload, separating *adversarial exposure* from *average behaviour*:
//! load-oblivious random dispatch shrugs off the adversary but pays a
//! heavy average-case price; sampled two-choices sits in between.

use flowsched_algos::policies::{dispatch, DispatchRule, Dispatcher};
use flowsched_algos::tiebreak::TieBreak;
use flowsched_kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_parallel::par_map;
use flowsched_sim::report::SimReport;
use flowsched_stats::descriptive::median;
use flowsched_stats::rng::derive_rng;
use flowsched_stats::zipf::BiasCase;
use flowsched_workloads::adversary::interval::run_interval_adversary;
use serde::Serialize;

use crate::scale::Scale;
use crate::table::TableBuilder;

/// One dispatch rule's scores.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyRow {
    /// Rule label.
    pub rule: String,
    /// `Fmax` on the Theorem 8 interval stream (OPT = 1, so this is the
    /// achieved competitive ratio; the EFT bound is `m − k + 1`).
    pub adversary_fmax: f64,
    /// Median `Fmax` on the stochastic workload (Shuffled s=1, 50% load,
    /// overlapping replication).
    pub kv_fmax_median: f64,
    /// Median p99 flow on the stochastic workload.
    pub kv_p99_median: f64,
}

fn rules(seed: u64) -> Vec<DispatchRule> {
    vec![
        DispatchRule::Eft(TieBreak::Min),
        DispatchRule::Eft(TieBreak::Max),
        DispatchRule::Eft(TieBreak::Rand { seed }),
        DispatchRule::TwoChoices { d: 2, seed },
        DispatchRule::RandomMachine { seed },
        DispatchRule::RoundRobin,
    ]
}

/// Runs the comparison.
pub fn run(scale: &Scale) -> Vec<PolicyRow> {
    let rules = rules(scale.seed ^ 0x90);
    par_map(&rules, |&rule| {
        let (m, k) = (scale.m, scale.k);

        // Adversarial axis: the oblivious Theorem 8 stream.
        let mut d = Dispatcher::new(m, rule);
        let adversary = run_interval_adversary(&mut d, k, m * m);
        let adversary_fmax = adversary.fmax();

        // Average axis: stochastic workload.
        let mut fmaxes = Vec::new();
        let mut p99s = Vec::new();
        for rep in 0..scale.repetitions {
            let mut rng = derive_rng(scale.seed, 0x90AC ^ (rep as u64) << 5);
            let cluster = KvCluster::new(
                ClusterConfig {
                    m,
                    k,
                    strategy: ReplicationStrategy::Overlapping,
                    s: 1.0,
                    case: BiasCase::Shuffled,
                },
                &mut rng,
            );
            let inst = cluster.requests(scale.tasks, 0.5 * m as f64, &mut rng);
            let schedule = dispatch(&inst, rule);
            let warmup = inst.len() / 10;
            let report = SimReport::from_schedule(&schedule, &inst, warmup);
            fmaxes.push(report.fmax);
            p99s.push(report.p99);
        }

        PolicyRow {
            rule: rule.to_string(),
            adversary_fmax,
            kv_fmax_median: median(&fmaxes),
            kv_p99_median: median(&p99s),
        }
    })
}

/// Renders the comparison.
pub fn render(rows: &[PolicyRow], scale: &Scale) -> String {
    let mut t = TableBuilder::new(&["rule", "Th.8 stream Fmax", "kv Fmax (50% load)", "kv p99"]);
    for r in rows {
        t.row(vec![
            r.rule.clone(),
            format!("{:.0}", r.adversary_fmax),
            format!("{:.1}", r.kv_fmax_median),
            format!("{:.1}", r.kv_p99_median),
        ]);
    }
    format!(
        "Immediate-dispatch rules — adversarial vs average behaviour\n\
         (m = {}, k = {}; EFT bound on the stream is m − k + 1 = {}):\n\n{}",
        scale.m,
        scale.k,
        scale.m - scale.k + 1,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            m: 8,
            k: 3,
            permutations: 4,
            repetitions: 2,
            tasks: 600,
            bias_step: 1.0,
            seed: 4,
        }
    }

    #[test]
    fn all_rules_scored() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 6);
        for label in [
            "EFT-Min",
            "EFT-Max",
            "EFT-Rand",
            "Choices(2)",
            "Random",
            "RoundRobin",
        ] {
            assert!(rows.iter().any(|r| r.rule == label), "missing {label}");
        }
    }

    #[test]
    fn eft_min_is_trapped_by_the_stream() {
        let scale = tiny();
        let rows = run(&scale);
        let min = rows.iter().find(|r| r.rule == "EFT-Min").unwrap();
        assert!(
            min.adversary_fmax >= (scale.m - scale.k + 1) as f64,
            "{min:?}"
        );
    }

    #[test]
    fn eft_max_escapes_but_load_oblivious_rules_diverge() {
        // The stream offers exactly 100% load, so load-*aware* rules with
        // a favourable bias (EFT-Max) keep flows at O(1), while
        // load-*oblivious* rules (Random, RoundRobin on overlapping sets)
        // accumulate random-walk backlog far beyond EFT-Min's m − k + 1 —
        // the adversary is not even needed to break them.
        let rows = run(&tiny());
        let get = |n: &str| rows.iter().find(|r| r.rule == n).unwrap();
        assert!(
            get("EFT-Max").adversary_fmax < get("EFT-Min").adversary_fmax,
            "EFT-Max {x} should escape the stream (EFT-Min {e})",
            x = get("EFT-Max").adversary_fmax,
            e = get("EFT-Min").adversary_fmax
        );
        assert!(
            get("Random").adversary_fmax > get("EFT-Min").adversary_fmax,
            "load-oblivious random {r} should diverge past EFT-Min {e}",
            r = get("Random").adversary_fmax,
            e = get("EFT-Min").adversary_fmax
        );
        // On the stochastic workload, full EFT beats random dispatch.
        assert!(
            get("Random").kv_fmax_median >= get("EFT-Min").kv_fmax_median,
            "random {r} vs eft-min {e}",
            r = get("Random").kv_fmax_median,
            e = get("EFT-Min").kv_fmax_median
        );
    }

    #[test]
    fn two_choices_interpolates() {
        let rows = run(&tiny());
        let get = |n: &str| rows.iter().find(|r| r.rule == n).unwrap();
        assert!(
            get("Choices(2)").kv_fmax_median <= get("Random").kv_fmax_median + 1e-9,
            "sampling two must not be worse than sampling one"
        );
    }

    #[test]
    fn render_shows_the_bound() {
        let scale = tiny();
        let s = render(&run(&scale), &scale);
        assert!(s.contains("m − k + 1 = 6"));
    }
}
