//! Experiment scale presets.

/// Knobs shared by all experiment runners: quick settings keep the whole
/// suite under a few seconds for CI; paper settings match Section 7's
/// parameters (m = 15, 100 permutations, 10 repetitions, 10 000 tasks).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Cluster size (paper: 15).
    pub m: usize,
    /// Replication factor (paper: 3).
    pub k: usize,
    /// Permutations for Shuffled medians (paper: 100).
    pub permutations: usize,
    /// Repetitions for simulation medians (paper: 10).
    pub repetitions: usize,
    /// Tasks per simulation run (paper: 10 000).
    pub tasks: usize,
    /// Zipf-bias grid step for Figure 10 (paper: 0.25 over [0, 5]).
    pub bias_step: f64,
    /// Root seed from which every stream is derived.
    pub seed: u64,
}

impl Scale {
    /// Paper-scale parameters (Section 7).
    pub fn paper() -> Self {
        Scale {
            m: 15,
            k: 3,
            permutations: 100,
            repetitions: 10,
            tasks: 10_000,
            bias_step: 0.25,
            seed: 0xF10C,
        }
    }

    /// Reduced parameters for tests and smoke runs.
    pub fn quick() -> Self {
        Scale {
            m: 15,
            k: 3,
            permutations: 8,
            repetitions: 3,
            tasks: 1_500,
            bias_step: 1.0,
            seed: 0xF10C,
        }
    }

    /// The bias values `s` swept by Figure 10: `0, step, …, 5`.
    pub fn bias_grid(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut s: f64 = 0.0;
        while s <= 5.0 + 1e-9 {
            out.push((s * 100.0).round() / 100.0);
            s += self.bias_step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_section7() {
        let s = Scale::paper();
        assert_eq!(s.m, 15);
        assert_eq!(s.k, 3);
        assert_eq!(s.permutations, 100);
        assert_eq!(s.repetitions, 10);
        assert_eq!(s.tasks, 10_000);
    }

    #[test]
    fn bias_grid_covers_zero_to_five() {
        let grid = Scale::paper().bias_grid();
        assert_eq!(grid.first(), Some(&0.0));
        assert_eq!(grid.last(), Some(&5.0));
        assert_eq!(grid.len(), 21);
    }

    #[test]
    fn quick_grid_is_coarser() {
        assert_eq!(
            Scale::quick().bias_grid(),
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        );
    }
}
