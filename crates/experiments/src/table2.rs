//! Table 2 — the paper's new bounds under structured processing sets,
//! each verified empirically: the corresponding adversary (or workload)
//! is run and the achieved ratio is reported next to the theoretical
//! bound.

use flowsched_algos::eft;
use flowsched_algos::eft::EftState;
use flowsched_algos::offline::optimal_unit_fmax;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_workloads::adversary::fixed_size::fixed_size_adversary;
use flowsched_workloads::adversary::inclusive::inclusive_adversary;
use flowsched_workloads::adversary::interval::run_interval_adversary;
use flowsched_workloads::adversary::nested::nested_adversary;
use flowsched_workloads::adversary::padded::padded_interval_adversary;
use flowsched_workloads::adversary::theorem7::theorem7_adversary;
use flowsched_workloads::random::{random_instance, RandomInstanceConfig, StructureKind};
use serde::Serialize;

use crate::scale::Scale;
use crate::table::TableBuilder;

/// One verified bound.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Paper reference (theorem / corollary).
    pub reference: String,
    /// Structure of the processing sets.
    pub structure: String,
    /// Algorithm class the bound applies to.
    pub algorithm: String,
    /// Bound formula.
    pub formula: String,
    /// Bound value at the measured parameters.
    pub bound_value: f64,
    /// Kind of bound: `true` = lower bound on the ratio (adversary must
    /// achieve ≥ bound), `false` = upper bound (measured must stay ≤).
    pub is_lower_bound: bool,
    /// Achieved/measured competitive ratio.
    pub measured: f64,
    /// Parameters used.
    pub params: String,
}

/// Runs every Table 2 verification.
pub fn run(scale: &Scale) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    let p = 1000.0;

    // Theorem 3 — inclusive, immediate dispatch, ⌊log2 m + 1⌋.
    {
        let m = 16;
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = inclusive_adversary(&mut algo, p);
        rows.push(Table2Row {
            reference: "Th. 3".into(),
            structure: "inclusive".into(),
            algorithm: "immediate dispatch (EFT-Min)".into(),
            formula: "≥ ⌊log2(m)+1⌋".into(),
            bound_value: ((m as f64).log2().floor() + 1.0).floor(),
            is_lower_bound: true,
            measured: out.ratio(),
            params: format!("m={m}, p={p}"),
        });
    }

    // Theorem 4 — |Mi| = k, immediate dispatch, ⌊log_k m⌋.
    {
        let (m, k) = (16, 2);
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = fixed_size_adversary(&mut algo, k, p);
        rows.push(Table2Row {
            reference: "Th. 4".into(),
            structure: format!("|Mi| = {k}"),
            algorithm: "immediate dispatch (EFT-Min)".into(),
            formula: "≥ ⌊log_k(m)⌋".into(),
            bound_value: (m as f64).log(k as f64).floor(),
            is_lower_bound: true,
            measured: out.ratio(),
            params: format!("m={m}, k={k}, p={p}"),
        });
    }

    // Theorem 5 — nested, any online, ⅓⌊log2 m + 2⌋.
    {
        let m = 16;
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = nested_adversary(&mut algo);
        rows.push(Table2Row {
            reference: "Th. 5".into(),
            structure: "nested".into(),
            algorithm: "any online (EFT-Min shown)".into(),
            formula: "≥ (1/3)⌊log2(m)+2⌋".into(),
            bound_value: ((m as f64).log2() + 2.0).floor() / 3.0,
            is_lower_bound: true,
            measured: out.ratio(),
            params: format!("m={m}, unit tasks"),
        });
    }

    // Corollary 1 — disjoint |Mi| = k, EFT, ≤ 3 − 2/k (upper bound).
    {
        let (m, k) = (scale.m, scale.k);
        let mut worst: f64 = 1.0;
        for seed in 0..scale.permutations.max(8) as u64 {
            let cfg = RandomInstanceConfig {
                m,
                n: 6 * m,
                structure: StructureKind::DisjointBlocks(k),
                release_span: 6,
                unit: true,
                ptime_steps: 4,
            };
            let inst = random_instance(&cfg, scale.seed ^ (0xD15 + seed));
            let s = eft(&inst, TieBreak::Min);
            let opt = optimal_unit_fmax(&inst);
            worst = worst.max(s.fmax(&inst) / opt);
        }
        rows.push(Table2Row {
            reference: "Cor. 1".into(),
            structure: format!("disjoint, |Mi| = {k}"),
            algorithm: "EFT".into(),
            formula: "≤ 3 − 2/k".into(),
            bound_value: 3.0 - 2.0 / k as f64,
            is_lower_bound: false,
            measured: worst,
            params: format!("m={m}, k={k}, random bursts"),
        });
    }

    // Theorem 7 — interval |Mi| = k, any online, ≥ 2.
    {
        let mut algo = EftState::new(4, TieBreak::Min);
        let out = theorem7_adversary(&mut algo, p);
        rows.push(Table2Row {
            reference: "Th. 7".into(),
            structure: "interval, |Mi| = 2".into(),
            algorithm: "any online (EFT-Min shown)".into(),
            formula: "≥ 2".into(),
            bound_value: 2.0,
            is_lower_bound: true,
            measured: out.ratio(),
            params: format!("m=4, p={p}"),
        });
    }

    // Theorems 8/9/10 — interval |Mi| = k, EFT, ≥ m − k + 1.
    {
        let (m, k) = (scale.m, scale.k);
        let rounds = m * m;
        let mut min_algo = EftState::new(m, TieBreak::Min);
        let out = run_interval_adversary(&mut min_algo, k, rounds);
        rows.push(Table2Row {
            reference: "Th. 8".into(),
            structure: format!("interval, |Mi| = {k}"),
            algorithm: "EFT-Min".into(),
            formula: "≥ m − k + 1".into(),
            bound_value: (m - k + 1) as f64,
            is_lower_bound: true,
            measured: out.ratio(),
            params: format!("m={m}, k={k}, {rounds} steps, unit tasks"),
        });

        let mut rand_algo = EftState::new(m, TieBreak::Rand { seed: scale.seed });
        let out = run_interval_adversary(&mut rand_algo, k, 4 * rounds);
        rows.push(Table2Row {
            reference: "Th. 9".into(),
            structure: format!("interval, |Mi| = {k}"),
            algorithm: "EFT-Rand".into(),
            formula: "≥ m − k + 1 (a.s.)".into(),
            bound_value: (m - k + 1) as f64,
            is_lower_bound: true,
            measured: out.ratio(),
            params: format!("m={m}, k={k}, {} steps, unit tasks", 4 * rounds),
        });

        let mut max_algo = EftState::new(m, TieBreak::Max);
        let out = padded_interval_adversary(&mut max_algo, k, rounds);
        rows.push(Table2Row {
            reference: "Th. 10".into(),
            structure: format!("interval, |Mi| = {k}"),
            algorithm: "EFT, any tie-break (EFT-Max shown)".into(),
            formula: "≥ m − k + 1".into(),
            bound_value: (m - k + 1) as f64,
            is_lower_bound: true,
            measured: out.ratio(),
            params: format!("m={m}, k={k}, δ/ε-padded, {rounds} steps"),
        });
    }

    rows
}

/// Renders Table 2.
pub fn render(rows: &[Table2Row]) -> String {
    let mut t = TableBuilder::new(&[
        "ref",
        "structure",
        "algorithm",
        "bound",
        "value",
        "measured",
        "params",
    ]);
    for r in rows {
        t.row(vec![
            r.reference.clone(),
            r.structure.clone(),
            r.algorithm.clone(),
            r.formula.clone(),
            format!("{:.2}", r.bound_value),
            format!("{:.2}", r.measured),
            r.params.clone(),
        ]);
    }
    format!(
        "Table 2 — structured-processing-set bounds, theory vs. measured\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bound_is_respected() {
        for r in run(&Scale::quick()) {
            if r.is_lower_bound {
                // The adversary ratio may fall a whisker short of the
                // asymptotic value at finite p; allow 5%.
                assert!(
                    r.measured >= r.bound_value * 0.95,
                    "{}: measured {} < bound {}",
                    r.reference,
                    r.measured,
                    r.bound_value
                );
            } else {
                assert!(
                    r.measured <= r.bound_value + 1e-9,
                    "{}: measured {} > bound {}",
                    r.reference,
                    r.measured,
                    r.bound_value
                );
            }
        }
    }

    #[test]
    fn all_references_present() {
        let rows = run(&Scale::quick());
        let refs: Vec<&str> = rows.iter().map(|r| r.reference.as_str()).collect();
        for want in [
            "Th. 3", "Th. 4", "Th. 5", "Cor. 1", "Th. 7", "Th. 8", "Th. 9", "Th. 10",
        ] {
            assert!(refs.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn interval_rows_hit_m_minus_k_plus_1_exactly() {
        let rows = run(&Scale::quick());
        let th8 = rows.iter().find(|r| r.reference == "Th. 8").unwrap();
        assert!(th8.measured >= th8.bound_value, "{}", th8.measured);
    }

    #[test]
    fn render_is_complete() {
        let s = render(&run(&Scale::quick()));
        assert!(s.contains("Th. 10"));
        assert!(s.contains("m − k + 1"));
    }
}
