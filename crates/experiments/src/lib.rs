//! # flowsched-experiments
//!
//! One runner per table and figure of the paper's evaluation, plus the
//! ablations called out in `DESIGN.md`. Each module exposes a typed
//! `run(&Scale)` producing structured rows and a `render` function
//! producing the terminal table; the `flowsched-bench` binaries are thin
//! wrappers around these.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table 1 — measured FIFO/EFT competitiveness on `P` |
//! | [`table2`] | Table 2 — every structured lower/upper bound, measured |
//! | [`fig08`] | Figure 8 — load distributions `λ·P(Eⱼ)` |
//! | [`fig10`] | Figure 10 — LP (15) max-load sweep, both strategies |
//! | [`fig11`] | Figure 11 — `Fmax` vs average load, EFT-Min/Max × strategies |
//! | [`ablation`] | tie-break × strategy ablation beyond the paper's pairs |
//! | [`openq`] | the conclusion's open question: a third replication strategy scored on load, average flow and adversarial exposure |
//! | [`ratio`] | competitive-ratio ladder — registry policies vs exact/lower-bound offline references |
//!
//! All experiments are deterministic given a root seed; [`Scale`] selects
//! quick (CI-friendly) or paper-scale parameters.

pub mod ablation;
pub mod fig08;
pub mod fig10;
pub mod fig11;
pub mod openq;
pub mod plot;
pub mod policies;
pub mod ratio;
pub mod record;
pub mod scale;
pub mod selfcheck;
pub mod service;
pub mod table;
pub mod table1;
pub mod table2;

pub use scale::Scale;
pub use table::TableBuilder;
