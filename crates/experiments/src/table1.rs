//! Table 1 — measured competitiveness of FIFO/EFT on plain parallel
//! machines (`P | online-rᵢ | Fmax`).
//!
//! The paper's Table 1 surveys known bounds; two rows are measurable
//! here:
//!
//! - **Theorem 1** (`3 − 2/m`): FIFO on bursty instances with *general*
//!   processing times, compared against the exact offline optimum
//!   (exhaustive search, so instances are kept small). The observed ratio
//!   must never exceed the bound, and must exceed 1 somewhere or the
//!   measurement is vacuous.
//! - **Theorem 2** (optimality for `pᵢ = p`): on unit-task instances FIFO
//!   must match the exact matching-based optimum *exactly*.
//!
//! Proposition 1 (FIFO ≡ EFT) is asserted on every trial as a bonus.

use flowsched_algos::offline::{brute_force_fmax, optimal_unit_fmax};
use flowsched_algos::tiebreak::TieBreak;
use flowsched_algos::{eft, fifo};
use flowsched_parallel::par_map;
use flowsched_workloads::random::{random_instance, RandomInstanceConfig, StructureKind};
use serde::Serialize;

use crate::scale::Scale;
use crate::table::{fnum, TableBuilder};

/// One row: the worst observed FIFO ratio on `m` machines.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Machine count.
    pub m: usize,
    /// Unit tasks (Theorem 2 row) or general processing times
    /// (Theorem 1 row).
    pub unit_tasks: bool,
    /// Theoretical bound on the ratio: `3 − 2/m`, or exactly 1 for unit
    /// tasks.
    pub bound: f64,
    /// Worst observed `Fmax(FIFO)/F*max` over the trials.
    pub worst_ratio: f64,
    /// Trials run.
    pub trials: usize,
    /// Observed FIFO = EFT on every trial (Proposition 1).
    pub fifo_equals_eft: bool,
}

fn measure(m: usize, unit: bool, scale: &Scale) -> Table1Row {
    let trials = scale.permutations.max(8);
    let seeds: Vec<u64> = (0..trials as u64).collect();
    let results: Vec<(f64, bool)> = par_map(&seeds, |&seed| {
        // Bursty arrivals over a short span stress FIFO's worst case.
        // General-ptime instances stay tiny so exhaustive OPT is exact.
        let cfg = RandomInstanceConfig {
            m,
            n: if unit { 8 * m } else { 9 },
            structure: StructureKind::Unrestricted,
            release_span: if unit { 4 } else { 2 },
            unit,
            ptime_steps: 8,
        };
        let inst = random_instance(&cfg, scale.seed ^ (seed.wrapping_mul(0x9E37) + m as u64));
        let sf = fifo(&inst, TieBreak::Min);
        let se = eft(&inst, TieBreak::Min);
        let opt = if unit {
            optimal_unit_fmax(&inst)
        } else {
            brute_force_fmax(&inst)
        };
        (sf.fmax(&inst) / opt, sf == se)
    });
    Table1Row {
        m,
        unit_tasks: unit,
        bound: if unit { 1.0 } else { 3.0 - 2.0 / m as f64 },
        worst_ratio: results.iter().map(|r| r.0).fold(0.0, f64::max),
        trials,
        fifo_equals_eft: results.iter().all(|r| r.1),
    }
}

/// Runs the Table 1 measurements: Theorem 1 rows for `m ∈ {2, 3, 4}`
/// (exact OPT by exhaustive search) and Theorem 2 rows for
/// `m ∈ {2, 4, 8}` (exact OPT by matching).
pub fn run(scale: &Scale) -> Vec<Table1Row> {
    let mut rows: Vec<Table1Row> = [2usize, 3, 4]
        .iter()
        .map(|&m| measure(m, false, scale))
        .collect();
    rows.extend([2usize, 4, 8].iter().map(|&m| measure(m, true, scale)));
    rows
}

/// Renders the Table 1 rows together with the survey context.
pub fn render(rows: &[Table1Row]) -> String {
    let mut t = TableBuilder::new(&[
        "m",
        "tasks",
        "bound",
        "worst observed",
        "trials",
        "FIFO==EFT",
    ]);
    for r in rows {
        t.row(vec![
            r.m.to_string(),
            if r.unit_tasks {
                "unit (Th. 2)".into()
            } else {
                "general (Th. 1)".into()
            },
            fnum(r.bound),
            format!("{:.3}", r.worst_ratio),
            r.trials.to_string(),
            r.fifo_equals_eft.to_string(),
        ]);
    }
    format!(
        "Table 1 — FIFO on P | online-ri | Fmax: measured vs the (3-2/m) guarantee\n\
         (Th. 1) and exact optimality on unit tasks (Th. 2).\n\
         Known results not measurable here: online LB 2-1/m [Ambühl et al.],\n\
         Double-Fit 13.5 on Q [Bansal et al.], offline PTAS/FPTAS [Bansal; Mastrolilli].\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_respect_the_guarantee() {
        for r in run(&Scale::quick()) {
            assert!(
                r.worst_ratio <= r.bound + 1e-9,
                "m={} unit={}: observed {} exceeds bound {}",
                r.m,
                r.unit_tasks,
                r.worst_ratio,
                r.bound
            );
            assert!(r.worst_ratio >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn theorem2_rows_are_exactly_optimal() {
        for r in run(&Scale::quick()).iter().filter(|r| r.unit_tasks) {
            assert!(
                (r.worst_ratio - 1.0).abs() < 1e-9,
                "m={}: FIFO must be optimal on unit tasks, ratio {}",
                r.m,
                r.worst_ratio
            );
        }
    }

    #[test]
    fn proposition1_holds_on_every_trial() {
        for r in run(&Scale::quick()) {
            assert!(r.fifo_equals_eft, "m={}", r.m);
        }
    }

    #[test]
    fn general_instances_exercise_queueing() {
        // The Theorem 1 measurement is vacuous if every ratio is 1.0.
        let rows = run(&Scale::quick());
        assert!(
            rows.iter()
                .filter(|r| !r.unit_tasks)
                .any(|r| r.worst_ratio > 1.0),
            "no contention observed: {rows:?}"
        );
    }

    #[test]
    fn render_shows_both_theorems() {
        let s = render(&run(&Scale::quick()));
        assert!(s.contains("Th. 1"));
        assert!(s.contains("Th. 2"));
    }
}
