//! Tail latency in a replicated key-value store — the motivating problem
//! of the paper's introduction ("the tail at scale"). Generates a
//! key-level trace (hot keys, hashed owners, ring replication), serves it
//! with EFT under different service-time mixes, and reports the latency
//! percentiles an SRE would look at.
//!
//! ```text
//! cargo run --release --example tail_latency
//! ```

use flowsched::kvstore::replication::ReplicationStrategy;
use flowsched::prelude::*;
use flowsched::sim::report::SimReport;
use flowsched::stats::rng::derive_rng;
use flowsched::stats::service::ServiceDist;
use flowsched::workloads::trace::{generate_trace, TraceConfig};

fn main() {
    let m = 12;
    let base = TraceConfig {
        m,
        k: 3,
        strategy: ReplicationStrategy::Overlapping,
        num_keys: 1_000,
        key_bias: 1.0,
        lambda: 0.55 * m as f64, // 55% average load
        service: ServiceDist::unit(),
    };

    println!(
        "Key-value store tail latency — m = {m}, k = 3, ring replication,\n\
         1000 keys with Zipf(1.0) popularity, 55% load, 8000 requests\n"
    );
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "service mix", "p50", "p95", "p99", "max", "stretch"
    );

    for (label, service) in [
        ("deterministic", ServiceDist::unit()),
        ("exponential", ServiceDist::exp_unit()),
        ("mice & elephants", ServiceDist::mice_and_elephants()),
    ] {
        let mut rng = derive_rng(42, label.len() as u64);
        let trace = generate_trace(
            &TraceConfig {
                service,
                ..base.clone()
            },
            8_000,
            &mut rng,
        );
        let schedule = eft(&trace.instance, TieBreak::Min);
        schedule.validate(&trace.instance).expect("feasible");
        let report = SimReport::from_schedule(&schedule, &trace.instance, 800);
        println!(
            "{label:<22} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>9.1}",
            report.p50, report.p95, report.p99, report.fmax, report.max_stretch
        );
    }

    println!(
        "\nSame mean service time and load in every row — only variability\n\
         changes. The p99/p50 spread is the tail-latency problem; max stretch\n\
         shows short requests trapped behind long ones (invisible at p50)."
    );

    // The replication angle: hot keys vs strategy.
    println!("\nHot-key sensitivity (bias 2.0), strategy comparison at 30% load:");
    for strategy in ReplicationStrategy::extended() {
        let cfg = TraceConfig {
            strategy,
            key_bias: 2.0,
            lambda: 0.30 * m as f64,
            ..base.clone()
        };
        let mut rng = derive_rng(43, 7);
        let trace = generate_trace(&cfg, 8_000, &mut rng);
        let schedule = eft(&trace.instance, TieBreak::Min);
        let report = SimReport::from_schedule(&schedule, &trace.instance, 800);
        let saturated = if report.looks_saturated() {
            " (saturating!)"
        } else {
            ""
        };
        println!(
            "  {strategy:<12} p99 = {:>6.1}  max = {:>7.1}{saturated}",
            report.p99, report.fmax
        );
    }
}
