//! Tour of the offline reference solvers on one instance: how far is the
//! online EFT decision from what an offline scheduler could do?
//!
//! ```text
//! cargo run --release --example offline_solvers
//! ```

use flowsched::algos::exact::exact_fmax;
use flowsched::algos::localsearch::eft_plus_local_search;
use flowsched::algos::offline::fmax_lower_bound;
use flowsched::algos::preemptive::optimal_preemptive_fmax;
use flowsched::prelude::*;
use flowsched::workloads::random::{random_instance, RandomInstanceConfig, StructureKind};

fn main() {
    // A crunchy instance: 16 tasks with varied lengths over 4 machines,
    // interval restrictions, bursty releases.
    let inst = random_instance(
        &RandomInstanceConfig {
            m: 4,
            n: 16,
            structure: StructureKind::IntervalFixed(2),
            release_span: 3,
            unit: false,
            ptime_steps: 8,
        },
        2024,
    );
    println!(
        "Instance: {} tasks, {} machines, interval sets of size 2, total work {:.2}\n",
        inst.len(),
        inst.machines(),
        inst.total_work()
    );

    let ladder: Vec<(&str, f64)> = vec![
        ("combinatorial lower bound", fmax_lower_bound(&inst)),
        (
            "preemptive optimum (max-flow)",
            optimal_preemptive_fmax(&inst, 1e-6),
        ),
        (
            "non-preemptive optimum (B&B)",
            exact_fmax(&inst, 100_000_000).value(),
        ),
        (
            "EFT + local search (offline polish)",
            eft_plus_local_search(&inst, TieBreak::Min, 200).fmax(&inst),
        ),
        ("EFT-Min (online)", eft(&inst, TieBreak::Min).fmax(&inst)),
        ("EFT-Max (online)", eft(&inst, TieBreak::Max).fmax(&inst)),
    ];

    println!("{:<38} {:>8}", "solver", "Fmax");
    println!("{}", "-".repeat(48));
    for (name, value) in &ladder {
        println!("{name:<38} {value:>8.3}");
    }

    println!(
        "\nThe ladder is ordered: LB ≤ preemptive OPT ≤ non-preemptive OPT ≤\n\
         polished ≤ online. Gaps tell you where the difficulty lives —\n\
         between the preemptive and non-preemptive optima it is the\n\
         no-migration constraint; between OPT and EFT it is the price of\n\
         irrevocable online decisions (what the paper's competitive ratios\n\
         bound in the worst case)."
    );
}
