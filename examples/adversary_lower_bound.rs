//! Watch the paper's Theorem 8 lower bound materialize: the oblivious
//! task stream drives EFT-Min's maximum flow time up to `m − k + 1`
//! while the offline optimum stays at 1.
//!
//! ```text
//! cargo run --release --example adversary_lower_bound
//! ```

use flowsched::core::profile::{compare_profiles, profile_at, stable_profile};
use flowsched::prelude::*;
use flowsched::workloads::adversary::interval::run_interval_adversary;
use flowsched::workloads::adversary::padded::padded_interval_adversary;

fn main() {
    let (m, k) = (10usize, 3usize);
    let rounds = m * m;

    println!("Theorem 8 — EFT-Min vs the interval adversary (m = {m}, k = {k})\n");
    let mut algo = EftState::new(m, TieBreak::Min);
    let out = run_interval_adversary(&mut algo, k, rounds);
    out.validate().expect("valid schedule");

    // Show the backlog profile marching toward the stable profile
    // w_τ(j) = min(m − j, m − k).
    let target = stable_profile(m, k);
    println!("stable profile w_τ = {target:?}");
    for t in [1usize, 2, 4, 8, 16, 32, 64] {
        if t >= rounds {
            break;
        }
        let w = profile_at(&out.schedule, &out.instance, t as f64);
        let tag = match compare_profiles(&w, &target) {
            Some(std::cmp::Ordering::Equal) => " ← reached w_τ",
            _ => "",
        };
        println!("  w_{t:<3} = {w:?}{tag}");
    }
    println!(
        "\nEFT-Min Fmax = {} (theorem bound m − k + 1 = {}), offline OPT = 1",
        out.fmax(),
        m - k + 1
    );

    // The same stream does NOT trap EFT-Max …
    let mut algo = EftState::new(m, TieBreak::Max);
    let escape = run_interval_adversary(&mut algo, k, rounds);
    println!(
        "EFT-Max on the same stream: Fmax = {} (escapes)",
        escape.fmax()
    );

    // … but the Theorem 10 padded stream traps every tie-break policy.
    println!("\nTheorem 10 — δ/ε-padded stream (no tie-break escapes):");
    for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 7 }] {
        let mut algo = EftState::new(m, tb);
        let padded = padded_interval_adversary(&mut algo, k, rounds);
        println!("  {tb:<8} Fmax = {:.3}", padded.fmax());
    }
}
