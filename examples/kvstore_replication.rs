//! Key-value store scenario: compare the two replication strategies of
//! the paper (overlapping ring intervals vs disjoint blocks) under a
//! popularity bias, as a small version of the paper's Figure 11.
//!
//! ```text
//! cargo run --release --example kvstore_replication
//! ```

use flowsched::kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched::kvstore::replication::ReplicationStrategy;
use flowsched::prelude::*;
use flowsched::sim::driver::{simulate, SimConfig};
use flowsched::solver::loadflow::max_load_lp;
use flowsched::stats::rng::derive_rng;
use flowsched::stats::zipf::BiasCase;

fn main() {
    let (m, k, s) = (15usize, 3usize, 1.0);
    let n_requests = 5_000;
    let seed = 2024u64;

    println!("Replicated key-value store, m = {m}, k = {k}, Zipf bias s = {s} (Shuffled)\n");

    for strategy in ReplicationStrategy::all() {
        // Build the cluster (the Shuffled case randomly permutes which
        // machines are hot).
        let mut rng = derive_rng(seed, 1);
        let cluster = KvCluster::new(
            ClusterConfig {
                m,
                k,
                strategy,
                s,
                case: BiasCase::Shuffled,
            },
            &mut rng,
        );

        // What load can this replication structure theoretically absorb?
        let max_load =
            max_load_lp(cluster.popularity().probs(), &cluster.allowed_sets()) / m as f64;
        println!(
            "[{strategy}] theoretical max load: {:.0}%",
            max_load * 100.0
        );

        // Simulate EFT at increasing offered loads.
        println!("  load%   Fmax(EFT-Min)  mean flow   p99");
        for load_pct in [30.0, 45.0, 60.0, 75.0] {
            let lambda = load_pct / 100.0 * m as f64;
            let mut rng = derive_rng(seed, 100 + load_pct as u64);
            let inst = cluster.requests(n_requests, lambda, &mut rng);
            let (_, report) = simulate(
                &inst,
                &SimConfig {
                    policy: TieBreak::Min,
                    warmup_fraction: 0.1,
                },
            );
            let saturated = if report.looks_saturated() {
                "  (saturated)"
            } else {
                ""
            };
            println!(
                "  {load_pct:>4.0}    {:>8.1}      {:>6.2}   {:>6.1}{saturated}",
                report.fmax, report.mean_flow, report.p99
            );
        }
        println!();
    }

    println!(
        "Expected shape (paper, Section 7.4): overlapping rings tolerate a higher\n\
         load before flow times blow up — even though their worst-case competitive\n\
         ratio (m − k + 1) is far worse than the disjoint guarantee (3 − 2/k)."
    );
}
