//! Tour of the processing-set structure zoo (the paper's Figure 1) and
//! how EFT's guarantee changes across it — run each structure against the
//! same bursty workload and compare achieved ratios to the exact optimum.
//!
//! ```text
//! cargo run --release --example structure_zoo
//! ```

use flowsched::algos::offline::optimal_unit_fmax;
use flowsched::core::structure;
use flowsched::prelude::*;
use flowsched::workloads::random::{random_instance, RandomInstanceConfig, StructureKind};

fn main() {
    let m = 8;
    println!("EFT-Min across processing-set structures (m = {m}, bursty unit tasks)\n");
    println!(
        "{:<22} {:>9} {:>6} {:>6} {:>7}   guarantee",
        "structure", "class", "Fmax", "OPT", "ratio"
    );

    let zoo: Vec<(&str, StructureKind, &str)> = vec![
        (
            "unrestricted",
            StructureKind::Unrestricted,
            "3 − 2/m (Th. 1)",
        ),
        (
            "disjoint blocks k=4",
            StructureKind::DisjointBlocks(4),
            "3 − 2/k (Cor. 1)",
        ),
        (
            "intervals k=4",
            StructureKind::IntervalFixed(4),
            "≥ m − k + 1 worst case (Th. 8)",
        ),
        (
            "ring intervals k=4",
            StructureKind::RingFixed(4),
            "≥ m − k + 1 worst case (Th. 8)",
        ),
        (
            "inclusive chain",
            StructureKind::InclusiveChain,
            "≥ ⌊log2 m + 1⌋ worst case (Th. 3)",
        ),
        (
            "nested laminar",
            StructureKind::NestedLaminar,
            "≥ ⅓⌊log2 m + 2⌋ worst case (Th. 5)",
        ),
        (
            "general",
            StructureKind::General,
            "≥ Ω(m) worst case [Anand et al.]",
        ),
    ];

    for (label, kind, guarantee) in zoo {
        // Aggregate over a few seeds: the worst ratio seen.
        let mut worst = (0.0f64, 0.0f64, 1.0f64);
        for seed in 0..6u64 {
            let cfg = RandomInstanceConfig {
                m,
                n: 6 * m,
                structure: kind,
                release_span: 5,
                unit: true,
                ptime_steps: 4,
            };
            let inst = random_instance(&cfg, seed);
            let schedule = eft(&inst, TieBreak::Min);
            schedule.validate(&inst).expect("feasible");
            let fmax = schedule.fmax(&inst);
            let opt = optimal_unit_fmax(&inst);
            if fmax / opt > worst.2 || worst.0 == 0.0 {
                worst = (fmax, opt, fmax / opt);
            }
        }
        // Classify the first instance's family for display.
        let inst = random_instance(
            &RandomInstanceConfig {
                m,
                n: 6 * m,
                structure: kind,
                release_span: 5,
                unit: true,
                ptime_steps: 4,
            },
            0,
        );
        let class = structure::classify(inst.sets(), m).most_specific();
        println!(
            "{label:<22} {class:>9} {:>6.1} {:>6.1} {:>7.2}   {guarantee}",
            worst.0, worst.1, worst.2
        );
    }

    println!(
        "\nTakeaway: on *random* workloads EFT stays close to optimal everywhere —\n\
         the separations in the guarantees column only bite under adversarial\n\
         streams (see the adversary_lower_bound example)."
    );
}
