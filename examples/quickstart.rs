//! Quickstart: build a small instance with processing set restrictions,
//! schedule it with EFT, inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use flowsched::core::gantt::{render, GanttOptions};
use flowsched::prelude::*;

fn main() {
    // A 4-machine cluster. Tasks arrive online: the scheduler sees each
    // task only at its release time and must dispatch it immediately.
    let m = 4;
    let mut builder = InstanceBuilder::new(m);

    // Three replicated requests (interval processing sets of size 2) and
    // one unreplicated request pinned to machine M1.
    builder.push(Task::new(0.0, 2.0), ProcSet::interval(0, 1));
    builder.push(Task::new(0.0, 1.0), ProcSet::interval(1, 2));
    builder.push(Task::new(0.5, 1.5), ProcSet::interval(2, 3));
    builder.push(Task::new(1.0, 1.0), ProcSet::singleton(0));
    let instance = builder.build().expect("valid instance");

    // EFT (Earliest Finish Time) is the paper's immediate-dispatch
    // scheduler; the tie-break policy decides among equally good machines.
    let schedule = eft(&instance, TieBreak::Min);
    schedule
        .validate(&instance)
        .expect("EFT schedules are feasible");

    println!("Gantt chart (cells are task numbers, '.' = idle):\n");
    print!(
        "{}",
        render(
            &schedule,
            &instance,
            &GanttOptions {
                resolution: 0.5,
                ..Default::default()
            }
        )
    );

    println!("\nPer-task flow times (completion − release):");
    for (id, task, set) in instance.iter() {
        println!(
            "  {id}: released {:.1}, p = {:.1}, set {} → {} at {:.1}, flow {:.1}",
            task.release,
            task.ptime,
            set,
            schedule.machine(id),
            schedule.start(id),
            schedule.flow_time(id, &instance),
        );
    }
    println!(
        "\nFmax (the paper's objective) = {:.1}",
        schedule.fmax(&instance)
    );

    // Compare against the exact offline optimum (exhaustive — tiny
    // instances only) to see how far the online decision was from ideal.
    let opt = flowsched::algos::offline::brute_force_fmax(&instance);
    println!("offline optimal Fmax        = {opt:.1}");
    println!(
        "competitive ratio achieved  = {:.2}",
        schedule.fmax(&instance) / opt
    );
}
