//! Max-load analysis (the paper's LP (15)): how much offered load a
//! replication structure can absorb under increasing popularity bias,
//! solved two independent ways (simplex LP and max-flow bisection).
//!
//! ```text
//! cargo run --release --example maxload_analysis
//! ```

use flowsched::kvstore::replication::ReplicationStrategy;
use flowsched::solver::loadflow::{max_load_binary_search, max_load_lp};
use flowsched::stats::zipf::Zipf;

fn main() {
    let (m, k) = (15usize, 3usize);
    println!("Theoretical max cluster load, m = {m}, k = {k}, Worst-case bias\n");
    println!(
        "{:>5}  {:>12}  {:>12}  {:>7}  {:>10}",
        "s", "overlapping", "disjoint", "gain", "LP=flow?"
    );

    for s10 in 0..=20 {
        let s = s10 as f64 * 0.25;
        let weights = Zipf::new(m, s);
        let mut pct = [0.0f64; 2];
        let mut agree = true;
        for (i, strategy) in ReplicationStrategy::all().into_iter().enumerate() {
            let allowed = strategy.allowed_sets(k, m);
            let lp = max_load_lp(weights.probs(), &allowed);
            let flow = max_load_binary_search(weights.probs(), &allowed, 1e-7);
            agree &= (lp - flow).abs() < 1e-4;
            pct[i] = lp / m as f64 * 100.0;
        }
        println!(
            "{s:>5.2}  {:>11.1}%  {:>11.1}%  {:>6.2}x  {:>10}",
            pct[0],
            pct[1],
            pct[0] / pct[1],
            if agree { "yes" } else { "NO" }
        );
    }

    println!(
        "\nExpected shape (paper, Fig. 10): identical at s = 0, overlapping\n\
         dominating by up to ~1.5x at moderate bias, converging again as the\n\
         bias gets extreme (a single machine owns almost everything and k−1\n\
         neighbours are the only help either way)."
    );
}
